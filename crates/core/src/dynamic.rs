//! Serving mutable graphs: an engine wrapper that routes queries through
//! pinned generation snapshots while edge batches commit underneath.
//!
//! [`DynamicEngine`] owns a [`graphpi_graph::delta::DynamicGraph`] (or its
//! WAL-backed durable variant) plus one fully-planned [`GraphPi`] engine
//! per *current* generation:
//!
//! * [`DynamicEngine::pin`] hands out a [`PinnedEngine`] — an `Arc` to
//!   the generation's engine plus its generation number, captured
//!   atomically. A query runs entirely against its pin, so it sees one
//!   consistent graph no matter how many batches commit mid-flight.
//! * [`DynamicEngine::apply`] durably commits a batch (WAL append +
//!   fsync first when durability is on), then builds the next
//!   generation's engine and swaps it in. Building the engine recomputes
//!   [`graphpi_graph::GraphStats`] — and therefore the stats
//!   *fingerprint* that keys the shared [`crate::engine::PlanCache`] —
//!   so queries against the new generation re-plan instead of reusing a
//!   stale plan, while queries still pinned to an old generation keep
//!   hitting their original cache entries. The fingerprint keying that
//!   was dormant while graphs were immutable becomes the cache
//!   invalidation mechanism.
//!
//! Engine construction is deliberately *per generation*, not per query:
//! one batch costs one stats recompute + plan-cache keying, then every
//! query of that generation is as cheap as on a static engine.

use crate::engine::GraphPi;
use graphpi_graph::delta::{CommitReport, DynamicGraph, EdgeBatch};
use graphpi_graph::wal::{DurableError, DurableGraph, DurableGraphOptions, RecoveryReport};
use graphpi_graph::CsrGraph;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};

enum Backing {
    /// Commits are write-ahead logged and survive `kill -9`.
    Durable(DurableGraph),
    /// In-memory only: same snapshot semantics, no crash recovery.
    Volatile(DynamicGraph),
}

/// A query's consistent view: one generation's engine, pinned. Cloning is
/// cheap (an `Arc` bump); the pinned generation's graph and plans stay
/// alive and bit-stable for as long as any pin exists.
#[derive(Clone)]
pub struct PinnedEngine {
    generation: u64,
    engine: Arc<GraphPi>,
}

impl PinnedEngine {
    /// The pinned generation number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The engine serving this generation.
    pub fn engine(&self) -> &GraphPi {
        &self.engine
    }
}

/// A [`GraphPi`] engine over a mutable graph: queries pin generations,
/// updates produce new ones, durability is optional (WAL-backed).
pub struct DynamicEngine {
    backing: Backing,
    current: RwLock<PinnedEngine>,
    /// Serialises `apply` end to end (commit + engine build + swap), so
    /// generations enter `current` in commit order.
    apply_lock: Mutex<()>,
}

impl DynamicEngine {
    /// Wraps a graph with snapshot semantics but no durability.
    pub fn volatile(graph: CsrGraph) -> Self {
        let backing = DynamicGraph::new(graph);
        let snapshot = backing.snapshot();
        let engine = Arc::new(GraphPi::new(snapshot.graph().as_ref().clone()));
        Self {
            backing: Backing::Volatile(backing),
            current: RwLock::new(PinnedEngine {
                generation: snapshot.generation(),
                engine,
            }),
            apply_lock: Mutex::new(()),
        }
    }

    /// Opens a WAL-backed engine: loads the checkpoint (or `initial`),
    /// replays the log, and serves the recovered generation. See
    /// [`DurableGraph::open`] for the recovery rules.
    pub fn durable<P: AsRef<Path>>(
        initial: CsrGraph,
        wal_path: P,
        options: DurableGraphOptions,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        let (backing, report) = DurableGraph::open(initial, wal_path, options)?;
        let snapshot = backing.snapshot();
        let engine = Arc::new(GraphPi::new(snapshot.graph().as_ref().clone()));
        Ok((
            Self {
                backing: Backing::Durable(backing),
                current: RwLock::new(PinnedEngine {
                    generation: snapshot.generation(),
                    engine,
                }),
                apply_lock: Mutex::new(()),
            },
            report,
        ))
    }

    /// Whether commits are write-ahead logged.
    pub fn is_durable(&self) -> bool {
        matches!(self.backing, Backing::Durable(_))
    }

    /// Pins the current generation for one query's lifetime.
    pub fn pin(&self) -> PinnedEngine {
        self.current
            .read()
            .expect("dynamic engine poisoned")
            .clone()
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.current
            .read()
            .expect("dynamic engine poisoned")
            .generation
    }

    /// Commits one batch and publishes the next generation. When the
    /// backing is durable, the batch is on disk (fsync'd) before it
    /// becomes visible; on `Ok` it survives any crash. Queries pinned to
    /// earlier generations are unaffected.
    pub fn apply(&self, batch: &EdgeBatch) -> Result<CommitReport, DurableError> {
        let _serialised = self.apply_lock.lock().expect("dynamic engine poisoned");
        let report = match &self.backing {
            Backing::Durable(durable) => durable.commit(batch)?,
            Backing::Volatile(graph) => graph.commit(batch)?,
        };
        self.publish(&report);
        Ok(report)
    }

    /// Forces a checkpoint on a durable backing; returns the
    /// checkpointed generation, or `None` when the engine is volatile.
    pub fn checkpoint(&self) -> Option<Result<u64, DurableError>> {
        match &self.backing {
            Backing::Durable(durable) => Some(durable.checkpoint()),
            Backing::Volatile(_) => None,
        }
    }

    /// Commits a batch received from a replication stream, asserting
    /// that its claimed `generation` continues this engine's sequence
    /// exactly ([`graphpi_graph::delta::DeltaError::GenerationGap`]
    /// otherwise). Publication mirrors [`DynamicEngine::apply`].
    pub fn apply_replicated(
        &self,
        generation: u64,
        batch: &EdgeBatch,
    ) -> Result<CommitReport, DurableError> {
        let _serialised = self.apply_lock.lock().expect("dynamic engine poisoned");
        let report = match &self.backing {
            Backing::Durable(durable) => durable.commit_replicated(generation, batch)?,
            Backing::Volatile(graph) => graph.commit_at(batch, generation)?,
        };
        self.publish(&report);
        Ok(report)
    }

    /// Replaces the whole graph with `base` at `generation` — the
    /// receiving end of a replication checkpoint bootstrap. On a durable
    /// backing the installed state is crash-safe before it is published.
    pub fn install_checkpoint(&self, base: CsrGraph, generation: u64) -> Result<(), DurableError> {
        let _serialised = self.apply_lock.lock().expect("dynamic engine poisoned");
        match &self.backing {
            Backing::Durable(durable) => durable.install_checkpoint(base, generation)?,
            Backing::Volatile(graph) => graph.reset_base(base, generation),
        }
        let snapshot = match &self.backing {
            Backing::Durable(durable) => durable.snapshot(),
            Backing::Volatile(graph) => graph.snapshot(),
        };
        let engine = Arc::new(GraphPi::new(snapshot.graph().as_ref().clone()));
        *self.current.write().expect("dynamic engine poisoned") =
            PinnedEngine { generation, engine };
        Ok(())
    }

    fn publish(&self, report: &CommitReport) {
        if report.inserted > 0 || report.deleted > 0 {
            let snapshot = match &self.backing {
                Backing::Durable(durable) => durable.snapshot(),
                Backing::Volatile(graph) => graph.snapshot(),
            };
            // New stats, new fingerprint, fresh plan-cache keys.
            let engine = Arc::new(GraphPi::new(snapshot.graph().as_ref().clone()));
            *self.current.write().expect("dynamic engine poisoned") = PinnedEngine {
                generation: report.generation,
                engine,
            };
        } else {
            // Nothing changed: keep the engine (and its warm plans), just
            // advance the generation number.
            self.current
                .write()
                .expect("dynamic engine poisoned")
                .generation = report.generation;
        }
    }

    /// Folds the overlay into a fresh base CSR off the commit path;
    /// `false` when a concurrent commit raced the merge (try again later).
    pub fn compact(&self) -> bool {
        match &self.backing {
            Backing::Durable(durable) => durable.compact(),
            Backing::Volatile(graph) => graph.compact(),
        }
    }

    /// The WAL file path, or `None` when the engine is volatile.
    pub fn wal_path(&self) -> Option<std::path::PathBuf> {
        match &self.backing {
            Backing::Durable(durable) => Some(durable.wal_path()),
            Backing::Volatile(_) => None,
        }
    }

    /// Durable end of the WAL in bytes, or `None` when volatile.
    pub fn wal_len(&self) -> Option<u64> {
        match &self.backing {
            Backing::Durable(durable) => Some(durable.wal_len()),
            Backing::Volatile(_) => None,
        }
    }

    /// The WAL's reset epoch, or `None` when volatile.
    pub fn wal_epoch(&self) -> Option<u64> {
        match &self.backing {
            Backing::Durable(durable) => Some(durable.wal_epoch()),
            Backing::Volatile(_) => None,
        }
    }

    /// Generation of the WAL's base (cursors behind it need a checkpoint
    /// bootstrap), or `None` when volatile.
    pub fn replication_horizon(&self) -> Option<u64> {
        match &self.backing {
            Backing::Durable(durable) => Some(durable.replication_horizon()),
            Backing::Volatile(_) => None,
        }
    }

    /// The checkpoint file path paired with the WAL, or `None` when
    /// volatile.
    pub fn checkpoint_file(&self) -> Option<std::path::PathBuf> {
        match &self.backing {
            Backing::Durable(durable) => Some(durable.checkpoint_path().to_path_buf()),
            Backing::Volatile(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CountOptions, PlanCache, PlanOptions};
    use crate::exec::pool::WorkerPool;
    use graphpi_graph::generators;
    use graphpi_pattern::prefab;

    #[test]
    fn pinned_queries_see_one_consistent_generation() {
        let engine = DynamicEngine::volatile(generators::power_law(120, 4, 5));
        let pin0 = engine.pin();
        let triangle = prefab::triangle();
        let count0 = pin0.engine().count(&triangle).unwrap();

        let mut batch = EdgeBatch::new();
        batch.insert(0, 1).insert(0, 2).insert(1, 2);
        batch.insert(3, 4).insert(3, 5).insert(4, 5);
        let report = engine.apply(&batch).unwrap();
        assert_eq!(report.generation, 1);

        // The old pin still answers with the old graph.
        assert_eq!(pin0.engine().count(&triangle).unwrap(), count0);
        // A fresh pin sees the committed batch.
        let pin1 = engine.pin();
        assert_eq!(pin1.generation(), 1);
        let count1 = pin1.engine().count(&triangle).unwrap();
        assert!(count1 != count0 || report.inserted == 0);
    }

    #[test]
    fn plan_cache_misses_on_the_new_generation_and_hits_on_the_old() {
        let engine = DynamicEngine::volatile(generators::power_law(150, 5, 17));
        let pool = Arc::new(WorkerPool::new(2));
        let cache = Arc::new(PlanCache::new(16));
        let pattern = prefab::house();
        let run = |pin: &PinnedEngine| {
            let session = pin.engine().session_shared(
                Arc::clone(&pool),
                Arc::clone(&cache),
                PlanOptions::default(),
                CountOptions::default(),
            );
            session.count(&pattern).unwrap()
        };

        let pin0 = engine.pin();
        run(&pin0);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 0));
        run(&pin0);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));

        // Mutate: the new generation's fingerprint differs, so the same
        // pattern re-plans (miss) instead of reusing the stale plan.
        let mut batch = EdgeBatch::new();
        batch.insert(0, 149).insert(1, 148).insert(2, 147);
        engine.apply(&batch).unwrap();
        let pin1 = engine.pin();
        assert_ne!(
            pin0.engine().stats().fingerprint(),
            pin1.engine().stats().fingerprint(),
            "mutation must change the stats fingerprint"
        );
        run(&pin1);
        let stats = cache.stats();
        assert_eq!(
            (stats.misses, stats.hits),
            (2, 1),
            "new generation must re-plan"
        );

        // The old pinned generation still hits its original entry.
        run(&pin0);
        let stats = cache.stats();
        assert_eq!(
            (stats.misses, stats.hits),
            (2, 2),
            "old generation must keep hitting"
        );
        // And the new generation now hits its own fresh entry.
        run(&pin1);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (2, 3));
    }

    #[test]
    fn effect_free_batches_keep_the_engine_and_advance_the_generation() {
        let engine = DynamicEngine::volatile(generators::cycle(12));
        let before = engine.pin();
        let mut noop = EdgeBatch::new();
        noop.insert(0, 1); // already present
        let report = engine.apply(&noop).unwrap();
        assert_eq!((report.inserted, report.deleted), (0, 0));
        let after = engine.pin();
        assert_eq!(after.generation(), 1);
        // Same engine instance: plans and stats carry over untouched.
        assert!(Arc::ptr_eq(&before.engine, &after.engine));
    }

    #[test]
    fn durable_engine_recovers_counts_bit_identical() {
        let dir = std::env::temp_dir().join(format!("graphpi_dyneng_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("graph.wal");
        let initial = generators::power_law(100, 4, 23);
        let pattern = prefab::house();

        let (engine, report) =
            DynamicEngine::durable(initial.clone(), &wal, DurableGraphOptions::default()).unwrap();
        assert!(report.created);
        for round in 0u32..6 {
            let mut batch = EdgeBatch::new();
            batch.insert(round, (round + 31) % 100);
            batch.delete(round + 2, (round + 3) % 100);
            engine.apply(&batch).unwrap();
        }
        let generation = engine.generation();
        let count = engine.pin().engine().count(&pattern).unwrap();
        drop(engine); // crash: nothing graceful runs

        let (recovered, report) =
            DynamicEngine::durable(initial, &wal, DurableGraphOptions::default()).unwrap();
        assert_eq!(report.replayed_batches, 6);
        assert_eq!(recovered.generation(), generation);
        assert_eq!(recovered.pin().engine().count(&pattern).unwrap(), count);
        std::fs::remove_dir_all(&dir).ok();
    }
}
