//! Error types for the GraphPi engine.

use std::fmt;

/// Errors reported by the high-level engine API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The pattern has no vertices.
    EmptyPattern,
    /// The pattern is disconnected; matching a disconnected pattern is not
    /// meaningful with a nested-loop search (its count is a product of the
    /// components' counts, which callers can compute themselves).
    DisconnectedPattern,
    /// The pattern has more vertices than supported by the planner
    /// (restriction generation and the performance model enumerate `n!`
    /// objects, so very large patterns are rejected up front).
    PatternTooLarge {
        /// Number of vertices in the offending pattern.
        vertices: usize,
        /// Maximum supported size.
        max: usize,
    },
    /// No valid configuration could be produced (should not happen for
    /// connected patterns within the size limit; reported defensively).
    NoConfiguration,
    /// A sampled approximate count was requested with a rate that is not a
    /// finite value in `(0, 1]`.
    InvalidSampleRate,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::EmptyPattern => write!(f, "pattern has no vertices"),
            EngineError::DisconnectedPattern => write!(f, "pattern is disconnected"),
            EngineError::PatternTooLarge { vertices, max } => {
                write!(
                    f,
                    "pattern has {vertices} vertices; at most {max} are supported"
                )
            }
            EngineError::NoConfiguration => write!(f, "no valid configuration could be generated"),
            EngineError::InvalidSampleRate => {
                write!(f, "sample rate must be a finite value in (0, 1]")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(EngineError::EmptyPattern
            .to_string()
            .contains("no vertices"));
        assert!(EngineError::DisconnectedPattern
            .to_string()
            .contains("disconnected"));
        assert!(EngineError::PatternTooLarge {
            vertices: 12,
            max: 8
        }
        .to_string()
        .contains("12"));
        assert!(EngineError::NoConfiguration
            .to_string()
            .contains("configuration"));
    }
}
