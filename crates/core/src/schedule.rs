//! Schedules and the 2-phase computation-avoid schedule generator
//! (Section IV-B of the paper).
//!
//! A *schedule* is the order in which the pattern's vertices are bound by
//! the nested-loop search. Of the `n!` possible orders, GraphPi keeps only
//! the "efficient" ones:
//!
//! * **Phase 1** — every prefix of the schedule must induce a connected
//!   subgraph of the pattern, otherwise some loop would have to iterate over
//!   the whole vertex set of the data graph instead of a neighborhood
//!   intersection.
//! * **Phase 2** — let `k` be the size of a maximum independent set of the
//!   pattern; the last `k` scheduled vertices must be pairwise non-adjacent,
//!   which pushes every intersection operation out of the innermost loops
//!   (and enables IEP counting, Section IV-D).

use graphpi_pattern::pattern::{Pattern, PatternVertex};

/// A search order over the pattern's vertices.
///
/// `order()[i]` is the pattern vertex bound by the `i`-th loop.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schedule {
    order: Vec<PatternVertex>,
}

impl Schedule {
    /// Creates a schedule from an explicit vertex order.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..pattern.num_vertices()`.
    pub fn new(pattern: &Pattern, order: Vec<PatternVertex>) -> Self {
        let n = pattern.num_vertices();
        assert_eq!(order.len(), n, "schedule length must equal pattern size");
        let mut seen = vec![false; n];
        for &v in &order {
            assert!(v < n, "schedule vertex {v} out of range");
            assert!(!seen[v], "schedule repeats vertex {v}");
            seen[v] = true;
        }
        Self { order }
    }

    /// The vertex order.
    pub fn order(&self) -> &[PatternVertex] {
        &self.order
    }

    /// Number of vertices (= number of loops).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True only for the degenerate empty schedule.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The loop position (0-based) of a pattern vertex.
    pub fn position_of(&self, v: PatternVertex) -> usize {
        self.order
            .iter()
            .position(|&u| u == v)
            .expect("vertex not in schedule")
    }

    /// Whether every prefix induces a connected subgraph (phase-1 test).
    pub fn prefixes_connected(&self, pattern: &Pattern) -> bool {
        (1..=self.order.len()).all(|i| pattern.induces_connected_subgraph(&self.order[..i]))
    }

    /// Whether the last `k` scheduled vertices are pairwise non-adjacent
    /// (phase-2 test).
    pub fn suffix_independent(&self, pattern: &Pattern, k: usize) -> bool {
        let n = self.order.len();
        if k <= 1 {
            return true;
        }
        pattern.is_independent_set(&self.order[n - k..])
    }

    /// Length of the maximal pairwise-non-adjacent suffix of this schedule.
    /// This is the `k` available to IEP counting for this specific schedule.
    pub fn independent_suffix_len(&self, pattern: &Pattern) -> usize {
        let n = self.order.len();
        let mut k = 0;
        while k < n && pattern.is_independent_set(&self.order[n - (k + 1)..]) {
            k += 1;
        }
        k
    }
}

/// Generates all `n!` schedules of a pattern (used by Figure 9 and by the
/// oracle experiments; not by the production path).
pub fn all_schedules(pattern: &Pattern) -> Vec<Schedule> {
    let n = pattern.num_vertices();
    let mut result = Vec::new();
    let mut current = Vec::with_capacity(n);
    let mut used = vec![false; n];
    permute(pattern, &mut current, &mut used, &mut result, &|_, _| true);
    result
}

/// Phase 1 only: schedules whose every prefix induces a connected subgraph.
pub fn connected_schedules(pattern: &Pattern) -> Vec<Schedule> {
    let n = pattern.num_vertices();
    let mut result = Vec::new();
    let mut current = Vec::with_capacity(n);
    let mut used = vec![false; n];
    permute(
        pattern,
        &mut current,
        &mut used,
        &mut result,
        &|pattern, prefix| {
            // Incremental phase-1 check: the newly appended vertex must be
            // adjacent to at least one earlier vertex (except the first).
            let last = *prefix.last().unwrap();
            prefix.len() == 1
                || prefix[..prefix.len() - 1]
                    .iter()
                    .any(|&u| pattern.has_edge(u, last))
        },
    );
    result
}

/// The full 2-phase computation-avoid generator: phase-1 connectivity plus
/// the phase-2 independent-suffix requirement.
///
/// The paper states phase 2 with `k` equal to the pattern's maximum
/// independent set size; for some patterns (pure cycles, for example) no
/// schedule can satisfy both phases with that `k`, so — following the
/// "preferentially select" wording of Section IV-B — this generator keeps
/// the schedules whose independent suffix is the **longest achievable**
/// among all phase-1 schedules. For every pattern in the paper's evaluation
/// the achievable length equals the maximum independent set size, so the
/// behaviour matches the paper exactly there.
pub fn efficient_schedules(pattern: &Pattern) -> Vec<Schedule> {
    let connected = connected_schedules(pattern);
    let achievable = connected
        .iter()
        .map(|s| s.independent_suffix_len(pattern))
        .max()
        .unwrap_or(0);
    connected
        .into_iter()
        .filter(|s| s.independent_suffix_len(pattern) >= achievable)
        .collect()
}

/// Schedules eliminated by the 2-phase generator (the "×" markers of
/// Figure 9): all schedules minus the efficient ones.
pub fn eliminated_schedules(pattern: &Pattern) -> Vec<Schedule> {
    let efficient = efficient_schedules(pattern);
    all_schedules(pattern)
        .into_iter()
        .filter(|s| !efficient.contains(s))
        .collect()
}

fn permute(
    pattern: &Pattern,
    current: &mut Vec<PatternVertex>,
    used: &mut Vec<bool>,
    result: &mut Vec<Schedule>,
    prefix_ok: &dyn Fn(&Pattern, &[PatternVertex]) -> bool,
) {
    let n = pattern.num_vertices();
    if current.len() == n {
        result.push(Schedule {
            order: current.clone(),
        });
        return;
    }
    for v in 0..n {
        if used[v] {
            continue;
        }
        current.push(v);
        if prefix_ok(pattern, current) {
            used[v] = true;
            permute(pattern, current, used, result, prefix_ok);
            used[v] = false;
        }
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpi_pattern::prefab;

    #[test]
    fn all_schedules_counts_factorial() {
        assert_eq!(all_schedules(&prefab::triangle()).len(), 6);
        assert_eq!(all_schedules(&prefab::rectangle()).len(), 24);
        assert_eq!(all_schedules(&prefab::house()).len(), 120);
    }

    #[test]
    fn connected_schedules_of_a_path() {
        // Path 0-1-2: connected prefixes force starting anywhere but
        // growing contiguously: orders 012, 102, 120, 210, 201? Check: 201 ->
        // prefix [2,0] not adjacent -> invalid. Valid: 012, 021? [0,2] not
        // adjacent -> invalid. So valid: 012, 102, 120, 210 = 4.
        let p = prefab::path_pattern(3);
        let cs = connected_schedules(&p);
        assert_eq!(cs.len(), 4);
        for s in &cs {
            assert!(s.prefixes_connected(&p));
        }
    }

    #[test]
    fn clique_keeps_all_schedules() {
        // Every prefix of a clique is connected and k = 1, so nothing is
        // eliminated.
        let k4 = prefab::clique(4);
        assert_eq!(efficient_schedules(&k4).len(), 24);
        assert!(eliminated_schedules(&k4).is_empty());
    }

    #[test]
    fn house_phase2_forces_d_e_innermost() {
        // For the house (Figure 5) k = 2 and the only non-adjacent pairs are
        // (C,E)=(2,4) and (D,E)=(3,4); every efficient schedule must end
        // with one of those pairs in some order.
        let house = prefab::house();
        let eff = efficient_schedules(&house);
        assert!(!eff.is_empty());
        for s in &eff {
            let n = s.len();
            let tail = [s.order()[n - 2], s.order()[n - 1]];
            assert!(
                !house.has_edge(tail[0], tail[1]),
                "schedule {:?}",
                s.order()
            );
        }
        // The paper's example schedule A,B,C,D,E (= 0,1,2,3,4) is efficient.
        let paper = Schedule::new(&house, vec![0, 1, 2, 3, 4]);
        assert!(eff.contains(&paper));
        // A schedule binding C and D first then E violates phase 1 (E is
        // adjacent to neither C nor D).
        let bad = Schedule::new(&house, vec![2, 3, 4, 0, 1]);
        assert!(!bad.prefixes_connected(&house));
        assert!(!eff.contains(&bad));
    }

    #[test]
    fn generated_subset_relationships() {
        for (_, pattern) in prefab::evaluation_patterns() {
            let all = all_schedules(&pattern);
            let connected = connected_schedules(&pattern);
            let efficient = efficient_schedules(&pattern);
            assert!(connected.len() <= all.len());
            assert!(efficient.len() <= connected.len());
            assert!(
                !efficient.is_empty(),
                "pattern must have efficient schedules"
            );
            assert_eq!(
                efficient.len() + eliminated_schedules(&pattern).len(),
                all.len()
            );
            let k = pattern.max_independent_set_size();
            for s in &efficient {
                assert!(s.prefixes_connected(&pattern));
                // For every evaluation pattern the achievable suffix equals
                // the maximum independent set size, as in the paper.
                assert!(s.suffix_independent(&pattern, k));
                assert!(s.independent_suffix_len(&pattern) >= k);
            }
        }
    }

    #[test]
    fn cycles_degrade_gracefully() {
        // For a pure cycle no schedule can keep a length-2 independent
        // suffix while keeping every prefix connected; the generator must
        // still return the best achievable schedules instead of none.
        let c6 = prefab::cycle_pattern(6);
        let eff = efficient_schedules(&c6);
        assert!(!eff.is_empty());
        for s in &eff {
            assert!(s.prefixes_connected(&c6));
            assert_eq!(s.independent_suffix_len(&c6), 1);
        }
    }

    #[test]
    fn cycle6tri_suffix_is_def() {
        // Figure 6: D, E, F must be the innermost three loops.
        let p = prefab::cycle_6_tri();
        assert_eq!(p.max_independent_set_size(), 3);
        let eff = efficient_schedules(&p);
        let paper = Schedule::new(&p, vec![0, 1, 2, 3, 4, 5]);
        assert!(eff.contains(&paper));
        for s in &eff {
            let tail: Vec<_> = s.order()[3..].to_vec();
            assert!(p.is_independent_set(&tail));
        }
    }

    #[test]
    fn schedule_accessors() {
        let p = prefab::house();
        let s = Schedule::new(&p, vec![0, 2, 1, 3, 4]);
        assert_eq!(s.len(), 5);
        assert_eq!(s.position_of(1), 2);
        assert_eq!(s.order()[0], 0);
        assert!(s.independent_suffix_len(&p) >= 1);
    }

    #[test]
    #[should_panic]
    fn duplicate_vertex_rejected() {
        let p = prefab::triangle();
        let _ = Schedule::new(&p, vec![0, 0, 1]);
    }
}
