//! Cross-process plan-cache persistence (groundwork).
//!
//! A restarted server loses its compiled-plan cache and pays planning
//! latency again for every pattern of its working set. This module closes
//! half of that gap today: on graceful shutdown the server writes the
//! cache's **keys** (plus its lifetime counters) to a small checksummed
//! file, and on restart [`crate::engine::Session::warm_start`] re-plans the
//! keys that still apply, so the first client query per persisted pattern
//! is a cache hit. Full compiled-plan serialization is deliberately
//! deferred (plans hold the whole `Configuration`; re-planning is micro- to
//! milliseconds), but the file format reserves a flags field so a future
//! version can append plan bodies without breaking old readers.
//!
//! # File format (`GPPC0001`, all integers little-endian)
//!
//! ```text
//! magic   "GPPC0001"                      8 bytes
//! flags   u32 (0 = keys only)             4 bytes
//! hits    u64   ┐
//! misses  u64   │ cache counters at save time
//! evicts  u64   ┘
//! count   u32 number of keys
//! per key:
//!   graph_fingerprint     u64
//!   max_restriction_sets  u32
//!   max_schedules         u32
//!   pattern_len           u16
//!   pattern bytes         (canonical pattern serialisation)
//! checksum u64 (FNV-1a over everything above)
//! ```
//!
//! Loading validates the magic, every length, and the trailing checksum;
//! any mismatch is a typed [`PersistError`], never a panic — the file sits
//! on disk between process lifetimes and must be treated as untrusted.

use crate::engine::{CacheStats, PlanCache, SavedPlanKey};
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

/// File magic of the plan-cache snapshot format, version 1.
pub const MAGIC: &[u8; 8] = b"GPPC0001";

/// Upper bound on keys read back (a corrupt count field must not allocate
/// unbounded memory; real caches hold tens of plans).
const MAX_KEYS: u32 = 65_536;

/// Upper bound on one serialized pattern (canonical bytes of the largest
/// plannable pattern are tens of bytes; anything bigger is corruption).
const MAX_PATTERN_LEN: u16 = 4_096;

/// A plan-cache snapshot: the persisted keys plus the counters the cache
/// had accumulated when it was saved.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanCacheSnapshot {
    /// Cached keys, most recently used first.
    pub keys: Vec<SavedPlanKey>,
    /// Lifetime hits at save time.
    pub hits: u64,
    /// Lifetime misses at save time.
    pub misses: u64,
    /// Lifetime evictions at save time.
    pub evictions: u64,
}

/// Errors loading or saving a plan-cache snapshot.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// A length field is inconsistent with the file contents or limits.
    Malformed(&'static str),
    /// The trailing FNV-1a checksum does not match the payload.
    ChecksumMismatch,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "plan-cache snapshot I/O error: {e}"),
            PersistError::BadMagic => write!(f, "not a plan-cache snapshot (bad magic)"),
            PersistError::Malformed(what) => write!(f, "malformed plan-cache snapshot: {what}"),
            PersistError::ChecksumMismatch => write!(f, "plan-cache snapshot checksum mismatch"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serialises a snapshot to bytes (see the module docs for the layout).
pub fn encode_snapshot(snapshot: &PlanCacheSnapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + snapshot.keys.len() * 32);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&0u32.to_le_bytes()); // flags: keys only
    out.extend_from_slice(&snapshot.hits.to_le_bytes());
    out.extend_from_slice(&snapshot.misses.to_le_bytes());
    out.extend_from_slice(&snapshot.evictions.to_le_bytes());
    out.extend_from_slice(&(snapshot.keys.len() as u32).to_le_bytes());
    for key in &snapshot.keys {
        out.extend_from_slice(&key.graph_fingerprint.to_le_bytes());
        out.extend_from_slice(&(key.max_restriction_sets as u32).to_le_bytes());
        out.extend_from_slice(&(key.max_schedules as u32).to_le_bytes());
        out.extend_from_slice(&(key.pattern.len() as u16).to_le_bytes());
        out.extend_from_slice(&key.pattern);
    }
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Parses a snapshot from bytes, validating magic, lengths and checksum.
pub fn decode_snapshot(bytes: &[u8]) -> Result<PlanCacheSnapshot, PersistError> {
    if bytes.len() < MAGIC.len() + 4 + 24 + 4 + 8 {
        return Err(PersistError::Malformed(
            "file shorter than the fixed header",
        ));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    if fnv1a(payload) != stored {
        return Err(PersistError::ChecksumMismatch);
    }

    let mut pos = MAGIC.len();
    let mut take = |n: usize| -> Result<&[u8], PersistError> {
        let slice = payload
            .get(pos..pos + n)
            .ok_or(PersistError::Malformed("truncated record"))?;
        pos += n;
        Ok(slice)
    };
    let read_u16 = |b: &[u8]| u16::from_le_bytes(b.try_into().expect("2-byte slice"));
    let read_u32 = |b: &[u8]| u32::from_le_bytes(b.try_into().expect("4-byte slice"));
    let read_u64 = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("8-byte slice"));

    let flags = read_u32(take(4)?);
    if flags != 0 {
        return Err(PersistError::Malformed("unknown flags (newer format?)"));
    }
    let hits = read_u64(take(8)?);
    let misses = read_u64(take(8)?);
    let evictions = read_u64(take(8)?);
    let count = read_u32(take(4)?);
    if count > MAX_KEYS {
        return Err(PersistError::Malformed(
            "key count exceeds the format limit",
        ));
    }
    let mut keys = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let graph_fingerprint = read_u64(take(8)?);
        let max_restriction_sets = read_u32(take(4)?) as usize;
        let max_schedules = read_u32(take(4)?) as usize;
        let pattern_len = read_u16(take(2)?);
        if pattern_len > MAX_PATTERN_LEN {
            return Err(PersistError::Malformed("pattern length exceeds the limit"));
        }
        let pattern = take(pattern_len as usize)?.to_vec();
        keys.push(SavedPlanKey {
            pattern,
            max_restriction_sets,
            max_schedules,
            graph_fingerprint,
        });
    }
    if pos != payload.len() {
        return Err(PersistError::Malformed("trailing bytes after the last key"));
    }
    Ok(PlanCacheSnapshot {
        keys,
        hits,
        misses,
        evictions,
    })
}

/// Snapshots `cache` (keys + counters) and writes it to `path` atomically
/// (write to `path.tmp`, then rename). Returns the number of keys saved.
pub fn save_plan_cache(cache: &PlanCache, path: &Path) -> Result<usize, PersistError> {
    let CacheStats {
        hits,
        misses,
        evictions,
        ..
    } = cache.stats();
    let snapshot = PlanCacheSnapshot {
        keys: cache.saved_keys(),
        hits,
        misses,
        evictions,
    };
    let saved = snapshot.keys.len();
    let bytes = encode_snapshot(&snapshot);
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(saved)
}

/// Loads a snapshot from `path`. A missing file is reported as
/// [`PersistError::Io`] with [`std::io::ErrorKind::NotFound`] — callers
/// treat that as a cold start, not a failure.
pub fn load_plan_cache(path: &Path) -> Result<PlanCacheSnapshot, PersistError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode_snapshot(&bytes)
}

/// Loads a snapshot, folding every failure into "cold start". This is
/// the boot path for services that must come up no matter what is on
/// disk: a missing, truncated, or corrupt snapshot (e.g. a file caught
/// mid-write by a crash — the atomic tmp+rename in [`save_plan_cache`]
/// makes that near-impossible, but disks misbehave) yields `None`, and
/// the next periodic snapshot overwrites it.
pub fn try_load_plan_cache(path: &Path) -> Option<PlanCacheSnapshot> {
    load_plan_cache(path).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CountOptions, GraphPi, PlanOptions};
    use graphpi_graph::generators;
    use graphpi_pattern::prefab;

    fn snapshot_with(keys: Vec<SavedPlanKey>) -> PlanCacheSnapshot {
        PlanCacheSnapshot {
            keys,
            hits: 7,
            misses: 3,
            evictions: 1,
        }
    }

    fn sample_key(seed: u64) -> SavedPlanKey {
        SavedPlanKey {
            pattern: prefab::house().canonical_bytes(),
            max_restriction_sets: 64,
            max_schedules: 0,
            graph_fingerprint: seed,
        }
    }

    #[test]
    fn snapshot_round_trips() {
        for snapshot in [
            snapshot_with(vec![]),
            snapshot_with(vec![sample_key(1)]),
            snapshot_with(vec![sample_key(1), sample_key(2), sample_key(3)]),
        ] {
            let bytes = encode_snapshot(&snapshot);
            assert_eq!(decode_snapshot(&bytes).unwrap(), snapshot);
        }
    }

    #[test]
    fn corrupt_snapshots_yield_typed_errors() {
        let bytes = encode_snapshot(&snapshot_with(vec![sample_key(9)]));
        // Too short / bad magic.
        assert!(matches!(
            decode_snapshot(&[]),
            Err(PersistError::Malformed(_))
        ));
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            decode_snapshot(&bad_magic),
            Err(PersistError::BadMagic)
        ));
        // Any flipped payload byte trips the checksum.
        let mut flipped = bytes.clone();
        flipped[MAGIC.len() + 2] ^= 0x01;
        assert!(matches!(
            decode_snapshot(&flipped),
            Err(PersistError::ChecksumMismatch)
        ));
        // Truncation is caught (by length math or the checksum).
        for cut in 1..bytes.len() {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn save_load_warm_start_end_to_end() {
        let dir = std::env::temp_dir().join(format!("graphpi_persist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plans.gppc");

        let engine = GraphPi::new(generators::power_law(150, 5, 21));
        let session = engine.session_with(
            crate::config::PoolOptions {
                threads: 1,
                cache_capacity: 8,
                ..Default::default()
            },
            PlanOptions::default(),
            CountOptions::default(),
        );
        let expected = session.count(&prefab::house()).unwrap();
        session.count(&prefab::triangle()).unwrap();
        assert_eq!(save_plan_cache(session.cache(), &path).unwrap(), 2);

        // "Restart": fresh session over the same graph, warm from disk.
        let restarted = engine.session_with(
            crate::config::PoolOptions {
                threads: 1,
                cache_capacity: 8,
                ..Default::default()
            },
            PlanOptions::default(),
            CountOptions::default(),
        );
        let snapshot = load_plan_cache(&path).unwrap();
        assert_eq!(snapshot.keys.len(), 2);
        let report = restarted.warm_start(&snapshot.keys);
        assert_eq!(report.applicable, 2);
        assert_eq!(report.warmed, 2);
        // The first query after warm start is a HIT, and counts agree.
        assert_eq!(restarted.count(&prefab::house()).unwrap(), expected);
        let stats = restarted.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2, "only the warm-start plans were misses");

        // Keys for a different graph are inapplicable on this engine.
        let other = GraphPi::new(generators::power_law(150, 5, 22));
        let other_session = other.session_with(
            crate::config::PoolOptions {
                threads: 1,
                cache_capacity: 8,
                ..Default::default()
            },
            PlanOptions::default(),
            CountOptions::default(),
        );
        let report = other_session.warm_start(&snapshot.keys);
        assert_eq!(report.applicable, 0);
        assert_eq!(report.warmed, 0);

        // A missing file is NotFound, not a panic.
        assert!(matches!(
            load_plan_cache(&dir.join("absent.gppc")),
            Err(PersistError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound
        ));
        std::fs::remove_file(&path).ok();
    }
}
