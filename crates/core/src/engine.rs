//! High-level GraphPi engine: preprocessing, planning, and execution.
//!
//! [`GraphPi`] ties the pieces together the way Figure 3 of the paper does:
//!
//! 1. **Configuration generation** — restriction sets from the 2-cycle
//!    algorithm and schedules from the 2-phase generator.
//! 2. **Performance prediction** — every (schedule × restriction set)
//!    combination is ranked by the cost model; the cheapest becomes the
//!    plan.
//! 3. **Execution** — the plan runs on the data graph sequentially, in
//!    parallel, or on the simulated cluster, with or without IEP counting.

use crate::config::{Configuration, ExecutionPlan, PoolOptions, MAX_LOOPS};
use crate::error::EngineError;
use crate::exec::pool::WorkerPool;
use crate::exec::sink::ModeShared;
use crate::exec::{iep, interp, parallel};
use crate::perf_model::{select_best, CostEstimate, PerformanceModel};
use crate::schedule::{efficient_schedules, Schedule};
use graphpi_graph::csr::{CsrGraph, VertexId};
use graphpi_graph::hub::{HubGraph, HubOptions};
use graphpi_graph::stats::GraphStats;
use graphpi_pattern::pattern::Pattern;
use graphpi_pattern::restriction::{generate_restriction_sets, GenerationOptions, RestrictionSet};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Largest pattern size the planner accepts (the paper evaluates up to 6–7
/// vertices; preprocessing cost grows factorially beyond that). Equal to
/// [`MAX_LOOPS`], the bound the execution hot path relies on for its inline
/// per-task state.
pub const MAX_PATTERN_VERTICES: usize = MAX_LOOPS;

/// Options controlling configuration generation and selection.
#[derive(Debug, Clone, Copy)]
pub struct PlanOptions {
    /// Upper bound on the number of restriction sets combined with each
    /// schedule (the full family can be large for highly symmetric
    /// patterns; the best sets are almost always among the smallest).
    pub max_restriction_sets: usize,
    /// Upper bound on the number of schedules considered (0 = no limit).
    pub max_schedules: usize,
    /// Compile the selected configuration with IEP support (the default).
    /// IEP is a *counting* shortcut: it replaces the innermost independent
    /// loops with arithmetic and never materializes those vertices, so any
    /// mode that must visit every embedding — enumeration, per-vertex
    /// counts, sampled counting — plans with this `false`, which compiles
    /// a full-depth plan (empty IEP suffix, no-op correction) instead of
    /// stripping IEP from a counting plan after the fact.
    pub enable_iep: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        Self {
            max_restriction_sets: 64,
            max_schedules: 0,
            enable_iep: true,
        }
    }
}

/// Options controlling plan execution.
#[derive(Debug, Clone, Copy)]
pub struct CountOptions {
    /// Use the Inclusion-Exclusion Principle when only counting.
    pub use_iep: bool,
    /// Number of worker threads (0 = all cores, 1 = sequential).
    pub threads: usize,
    /// Outer-loop prefix depth for parallel tasks (None = heuristic).
    pub prefix_depth: Option<usize>,
    /// Execute against the hub-accelerated layout (degree-descending
    /// relabeling + bitset rows for the high-degree core). The index is
    /// built lazily once per engine and cached; counts are bit-identical
    /// with this on or off.
    pub hub_bitsets: bool,
    /// Pin the sorted-set intersection kernels to the portable scalar
    /// reference instead of the runtime-detected SIMD family. Kernel
    /// dispatch is **process-global** (`graphpi_graph::vertex_set`), and
    /// each engine/session count applies this field authoritatively —
    /// `true` pins scalar, `false` restores auto-detection (except under
    /// the sticky `GRAPHPI_FORCE_SCALAR` environment pin, which keeps the
    /// whole process scalar regardless). Counts are bit-identical with
    /// this on or off — the agreement suites enforce it.
    pub scalar_kernels: bool,
}

impl Default for CountOptions {
    fn default() -> Self {
        Self {
            use_iep: true,
            threads: 0,
            prefix_depth: None,
            hub_bitsets: false,
            scalar_kernels: false,
        }
    }
}

impl CountOptions {
    /// Sequential, enumeration-only execution (what the paper uses when
    /// comparing against GraphZero and Fractal).
    pub fn sequential_enumeration() -> Self {
        Self {
            use_iep: false,
            threads: 1,
            ..Self::default()
        }
    }

    /// Derives the executor options once. Call sites that execute many
    /// plans (a [`Session`], a repeat loop) derive this a single time and
    /// pass it by reference instead of rebuilding it per count.
    pub fn parallel_options(&self) -> parallel::ParallelOptions {
        parallel::ParallelOptions {
            threads: self.threads,
            prefix_depth: self.prefix_depth,
            mode: if self.use_iep {
                parallel::CountMode::Iep
            } else {
                parallel::CountMode::Enumerate
            },
            hub_bitsets: self.hub_bitsets,
            ..Default::default()
        }
    }
}

/// A selected plan together with planning metadata.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The compiled best configuration.
    pub plan: ExecutionPlan,
    /// Predicted cost of the selected configuration.
    pub predicted_cost: f64,
    /// Number of (schedule × restriction set) candidates that were ranked.
    pub candidates_considered: usize,
    /// Number of schedules produced by the 2-phase generator.
    pub schedules_generated: usize,
    /// Number of restriction sets produced by the 2-cycle algorithm.
    pub restriction_sets_generated: usize,
    /// Wall-clock time spent on preprocessing (configuration generation +
    /// performance prediction), the quantity Table III reports.
    pub preprocessing_time: Duration,
}

/// The GraphPi engine bound to one data graph.
#[derive(Debug, Clone)]
pub struct GraphPi {
    graph: CsrGraph,
    stats: GraphStats,
    /// Lazily built hub-acceleration index, shared across clones.
    hub: OnceLock<Arc<HubGraph>>,
}

impl GraphPi {
    /// Builds the engine, computing the graph statistics (vertex/edge and
    /// triangle counts) the performance model needs. This is the
    /// graph-dependent part of preprocessing and is done once per graph.
    pub fn new(graph: CsrGraph) -> Self {
        let stats = GraphStats::compute(&graph);
        Self {
            graph,
            stats,
            hub: OnceLock::new(),
        }
    }

    /// Builds the engine with precomputed statistics (e.g. loaded from disk).
    pub fn with_stats(graph: CsrGraph, stats: GraphStats) -> Self {
        Self {
            graph,
            stats,
            hub: OnceLock::new(),
        }
    }

    /// The underlying data graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The cached statistics.
    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    /// The hub-acceleration index (degree-descending relabeled graph +
    /// bitset rows for the high-degree core), built on first use and cached
    /// for the lifetime of the engine.
    pub fn hub_index(&self) -> &HubGraph {
        self.hub
            .get_or_init(|| Arc::new(HubGraph::build(&self.graph, HubOptions::default())))
    }

    fn check_pattern(&self, pattern: &Pattern) -> Result<(), EngineError> {
        if pattern.num_vertices() == 0 {
            return Err(EngineError::EmptyPattern);
        }
        if pattern.num_vertices() > MAX_PATTERN_VERTICES {
            return Err(EngineError::PatternTooLarge {
                vertices: pattern.num_vertices(),
                max: MAX_PATTERN_VERTICES,
            });
        }
        if !pattern.is_connected() {
            return Err(EngineError::DisconnectedPattern);
        }
        Ok(())
    }

    /// Runs configuration generation and performance prediction, returning
    /// the selected plan (Figure 3's preprocessing pipeline).
    pub fn plan(&self, pattern: &Pattern, options: PlanOptions) -> Result<Plan, EngineError> {
        self.check_pattern(pattern)?;
        let start = Instant::now();

        let restriction_sets = generate_restriction_sets(pattern, GenerationOptions::default());
        let schedules = efficient_schedules(pattern);
        if restriction_sets.is_empty() || schedules.is_empty() {
            return Err(EngineError::NoConfiguration);
        }
        let restriction_sets_generated = restriction_sets.len();
        let schedules_generated = schedules.len();

        // Prefer smaller restriction sets when capping: they filter earlier
        // in the loop nest on average and keep ranking cheap.
        let mut sets = restriction_sets;
        sets.sort_by_key(|s| s.len());
        if options.max_restriction_sets > 0 {
            sets.truncate(options.max_restriction_sets);
        }
        let mut schedules = schedules;
        if options.max_schedules > 0 {
            schedules.truncate(options.max_schedules);
        }

        let mut candidates: Vec<Configuration> = Vec::with_capacity(sets.len() * schedules.len());
        for schedule in &schedules {
            for set in &sets {
                candidates.push(Configuration::new(
                    pattern.clone(),
                    schedule.clone(),
                    set.clone(),
                ));
            }
        }

        let model = PerformanceModel::new(self.stats, pattern.num_vertices());
        let (best_idx, estimates) = select_best(&model, &candidates);
        let plan = candidates[best_idx].compile_with_iep(options.enable_iep);
        Ok(Plan {
            plan,
            predicted_cost: estimates[best_idx].total,
            candidates_considered: candidates.len(),
            schedules_generated,
            restriction_sets_generated,
            preprocessing_time: start.elapsed(),
        })
    }

    /// Predicts the cost of an explicit configuration with this graph's
    /// statistics (used by the model-accuracy experiments).
    pub fn predict(&self, config: &Configuration) -> CostEstimate {
        let model = PerformanceModel::new(self.stats, config.pattern.num_vertices());
        model.predict_configuration(config)
    }

    /// Counts embeddings of `pattern` with default planning and execution
    /// options.
    pub fn count(&self, pattern: &Pattern) -> Result<u64, EngineError> {
        let plan = self.plan(pattern, PlanOptions::default())?;
        Ok(self.execute_count(&plan.plan, CountOptions::default()))
    }

    /// Counts embeddings with explicit execution options.
    pub fn count_with(
        &self,
        pattern: &Pattern,
        plan_options: PlanOptions,
        count_options: CountOptions,
    ) -> Result<u64, EngineError> {
        let plan = self.plan(pattern, plan_options)?;
        Ok(self.execute_count(&plan.plan, count_options))
    }

    /// Executes an already-compiled plan and returns the embedding count.
    pub fn execute_count(&self, plan: &ExecutionPlan, options: CountOptions) -> u64 {
        // Derived exactly once per call (a Session derives it once per
        // session instead) and passed down by reference.
        let parallel_options = options.parallel_options();
        self.execute_count_prepared(plan, &options, &parallel_options)
    }

    /// [`GraphPi::execute_count`] with the executor options pre-derived:
    /// the hot entry point for repeated counting, where the caller holds
    /// one [`parallel::ParallelOptions`] and passes it by reference.
    pub fn execute_count_prepared(
        &self,
        plan: &ExecutionPlan,
        options: &CountOptions,
        parallel_options: &parallel::ParallelOptions,
    ) -> u64 {
        // The pair must agree on the counting mode: the sequential dispatch
        // below reads `options.use_iep`, the parallel executors read
        // `parallel_options.mode`. Derive the latter with
        // [`CountOptions::parallel_options`].
        debug_assert_eq!(
            parallel_options.mode == parallel::CountMode::Iep,
            options.use_iep,
            "parallel_options must be derived from the same CountOptions"
        );
        // Authoritative per call: dispatch is process-global, so this call's
        // setting becomes the process setting (the `GRAPHPI_FORCE_SCALAR`
        // environment pin is folded into detection and stays sticky).
        graphpi_graph::vertex_set::set_force_scalar(options.scalar_kernels);
        let threads = if options.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            options.threads
        };
        if options.hub_bitsets {
            let hubs = self.hub_index();
            return match (options.use_iep, threads) {
                (false, 1) => interp::count_embeddings_hub(plan, hubs),
                (true, 1) => iep::count_embeddings_iep_hub(plan, hubs),
                (_, _) => parallel::count_parallel_with_hubs(plan, hubs, *parallel_options),
            };
        }
        match (options.use_iep, threads) {
            (false, 1) => interp::count_embeddings(plan, &self.graph),
            (true, 1) => iep::count_embeddings_iep(plan, &self.graph),
            (_, _) => parallel::count_parallel(plan, &self.graph, *parallel_options),
        }
    }

    /// Lists every embedding of `pattern` (one `Vec` per embedding, indexed
    /// by pattern vertex).
    pub fn list(&self, pattern: &Pattern) -> Result<Vec<Vec<VertexId>>, EngineError> {
        let plan = self.plan(pattern, PlanOptions::default())?;
        Ok(interp::list_embeddings(&plan.plan, &self.graph))
    }

    /// Counts embeddings with an explicitly provided configuration,
    /// bypassing the planner (used by the schedule/restriction breakdown
    /// experiments).
    pub fn count_with_configuration(
        &self,
        schedule: Schedule,
        restrictions: RestrictionSet,
        pattern: &Pattern,
        options: CountOptions,
    ) -> u64 {
        let plan = Configuration::new(pattern.clone(), schedule, restrictions).compile();
        self.execute_count(&plan, options)
    }

    /// Opens a long-lived serving [`Session`] with default options: a
    /// persistent worker pool sized to the machine and a 64-plan LRU cache.
    pub fn session(&self) -> Session<'_> {
        self.session_with(
            PoolOptions::default(),
            PlanOptions::default(),
            CountOptions::default(),
        )
    }

    /// Opens a [`Session`] with explicit pool/planning/execution options.
    /// `count_options.threads` is superseded by `pool_options.threads`: the
    /// worker count is fixed when the pool is spawned. Likewise
    /// `pool_options.max_in_flight` fixes how many concurrent jobs the pool
    /// accepts before submitters block (backpressure).
    pub fn session_with(
        &self,
        pool_options: PoolOptions,
        plan_options: PlanOptions,
        count_options: CountOptions,
    ) -> Session<'_> {
        self.session_shared(
            Arc::new(WorkerPool::with_max_in_flight(
                pool_options.threads,
                pool_options.max_in_flight,
            )),
            Arc::new(PlanCache::new(pool_options.cache_capacity)),
            plan_options,
            count_options,
        )
    }

    /// Opens a [`Session`] on an existing pool and plan cache, so several
    /// engines (or several sessions over one engine) can share both. Plan
    /// cache keys include the graph-stats fingerprint, so sessions over
    /// different graphs can safely share one cache.
    pub fn session_shared(
        &self,
        pool: Arc<WorkerPool>,
        cache: Arc<PlanCache>,
        plan_options: PlanOptions,
        count_options: CountOptions,
    ) -> Session<'_> {
        let parallel_options = count_options.parallel_options();
        Session {
            engine: self,
            pool,
            cache,
            plan_options,
            count_options,
            parallel_options,
        }
    }
}

/// Key identifying a compiled plan: the labeled pattern bytes, the planning
/// caps, the planner's IEP flag, and the graph-stats fingerprint the cost
/// model ranked candidates with — everything the planner's *output* depends
/// on. Deliberately *not* keyed on the execution-time counting mode
/// ([`CountOptions::use_iep`]): an IEP-enabled plan serves both IEP and
/// enumeration counting, so keying on that would store byte-identical
/// plans twice and halve the effective LRU capacity. The planner flag
/// [`PlanOptions::enable_iep`] IS keyed, because it changes the compiled
/// plan itself (empty suffix, no-op correction) — count queries and
/// full-enumeration modes cache distinct plans for the same pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    pattern: Vec<u8>,
    max_restriction_sets: usize,
    max_schedules: usize,
    enable_iep: bool,
    graph_fingerprint: u64,
}

impl PlanKey {
    fn new(pattern: &Pattern, plan_options: &PlanOptions, stats: &GraphStats) -> Self {
        Self {
            pattern: pattern.canonical_bytes(),
            max_restriction_sets: plan_options.max_restriction_sets,
            max_schedules: plan_options.max_schedules,
            enable_iep: plan_options.enable_iep,
            graph_fingerprint: stats.fingerprint(),
        }
    }
}

/// A plan-cache key in portable, process-independent form: what
/// [`crate::persist`] writes to disk on server shutdown so a restarted
/// process can re-plan (and therefore re-cache) the same working set.
///
/// Only the *key* is persisted — compiled plans are cheap to regenerate
/// relative to serving them stale, so warm start replans from keys (full
/// plan serialization is deliberately deferred; see `ROADMAP.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedPlanKey {
    /// The labeled pattern, as [`Pattern::canonical_bytes`].
    pub pattern: Vec<u8>,
    /// The planning cap [`PlanOptions::max_restriction_sets`] in effect.
    pub max_restriction_sets: usize,
    /// The planning cap [`PlanOptions::max_schedules`] in effect.
    pub max_schedules: usize,
    /// The [`GraphStats::fingerprint`] of the graph the plan was ranked on.
    pub graph_fingerprint: u64,
}

/// Outcome of [`Session::count_approx`]: a Horvitz–Thompson estimate of
/// the embedding count from a uniform sample of search-prefix subtrees.
///
/// The estimator is unbiased: each prefix task is kept with the requested
/// probability (decided by a seeded hash, so a fixed seed reproduces the
/// same sample) and every kept task's exact embedding count is divided by
/// that probability. `stderr` is the estimated standard error — roughly,
/// the true count lies within `estimate ± 2 × stderr` 95% of the time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxCount {
    /// The Horvitz–Thompson estimate of the embedding count.
    pub estimate: f64,
    /// Estimated standard error of `estimate` (0 when the rate is ≥ 1,
    /// where the "estimate" is the exact count).
    pub stderr: f64,
    /// Number of prefix tasks that were sampled and fully counted.
    pub sampled_tasks: u64,
    /// Total number of prefix tasks the search decomposed into.
    pub total_tasks: u64,
}

/// Outcome of [`Session::warm_start`]: how many persisted keys applied to
/// this session's graph and planning options, and how many were actually
/// re-planned into the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmStartReport {
    /// Keys whose graph fingerprint and planning caps match this session.
    pub applicable: usize,
    /// Applicable keys successfully decoded, re-planned and cached.
    pub warmed: usize,
}

/// A snapshot of [`PlanCache`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the planner.
    pub misses: u64,
    /// Entries evicted to make room (LRU order).
    pub evictions: u64,
    /// Plans currently cached.
    pub len: usize,
    /// Maximum number of cached plans (0 = caching disabled).
    pub capacity: usize,
}

struct CacheEntry {
    plan: Arc<Plan>,
    /// Logical timestamp of the last hit (monotone per cache).
    last_used: u64,
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<PlanKey, CacheEntry>,
    clock: u64,
}

/// A thread-safe LRU cache of compiled [`Plan`]s, keyed by
/// (pattern bytes, planning caps, graph-stats fingerprint).
///
/// Planning (schedule enumeration + restriction generation + cost-model
/// ranking) is the per-query fixed cost the paper's batch setting never
/// amortized; in a serving setting repeated patterns skip it entirely.
/// Eviction scans for the least-recently-used entry — O(len), which is
/// irrelevant at plan-cache capacities (planning is micro- to milliseconds;
/// capacities are tens of entries).
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("stats", &stats)
            .finish()
    }
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (0 disables
    /// caching: every lookup is a miss and nothing is stored).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(CacheInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the cached plan for `key`, or runs `plan_fn` and caches its
    /// success. `plan_fn` runs outside the cache lock, so a slow planning
    /// run does not block hits on other keys; two threads racing on the
    /// same cold key may both plan, and the loser's (identical) plan wins.
    fn get_or_plan(
        &self,
        key: PlanKey,
        plan_fn: impl FnOnce() -> Result<Plan, EngineError>,
    ) -> Result<Arc<Plan>, EngineError> {
        if self.capacity > 0 {
            let mut inner = self.inner.lock().expect("plan cache poisoned");
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&entry.plan));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(plan_fn()?);
        if self.capacity > 0 {
            let mut inner = self.inner.lock().expect("plan cache poisoned");
            inner.clock += 1;
            let clock = inner.clock;
            if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
                if let Some(lru) = inner
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                {
                    inner.map.remove(&lru);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            inner.map.insert(
                key,
                CacheEntry {
                    plan: Arc::clone(&plan),
                    last_used: clock,
                },
            );
        }
        Ok(plan)
    }

    /// Counter snapshot (hits/misses/evictions/occupancy).
    pub fn stats(&self) -> CacheStats {
        let len = self.inner.lock().expect("plan cache poisoned").map.len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len,
            capacity: self.capacity,
        }
    }

    /// Drops every cached plan (counters are preserved).
    pub fn clear(&self) {
        self.inner.lock().expect("plan cache poisoned").map.clear();
    }

    /// Snapshots every cached key in portable form (most recently used
    /// first), for persistence across processes — see [`crate::persist`].
    ///
    /// Only IEP-enabled (count-path) keys are snapshotted: the persisted
    /// format predates [`PlanOptions::enable_iep`] and mode plans are cheap
    /// derivatives that warm themselves on the first enumeration/orbit/
    /// sample query, so persisting them is not worth a format change.
    pub fn saved_keys(&self) -> Vec<SavedPlanKey> {
        let inner = self.inner.lock().expect("plan cache poisoned");
        let mut entries: Vec<(&PlanKey, u64)> = inner
            .map
            .iter()
            .filter(|(k, _)| k.enable_iep)
            .map(|(k, e)| (k, e.last_used))
            .collect();
        entries.sort_by_key(|&(_, last_used)| std::cmp::Reverse(last_used));
        entries
            .into_iter()
            .map(|(k, _)| SavedPlanKey {
                pattern: k.pattern.clone(),
                max_restriction_sets: k.max_restriction_sets,
                max_schedules: k.max_schedules,
                graph_fingerprint: k.graph_fingerprint,
            })
            .collect()
    }
}

/// A long-lived query session: the warm serving path.
///
/// A `Session` pairs the engine with a persistent [`WorkerPool`] and a
/// compiled-[`PlanCache`] (both behind `Arc`, so sessions are cheap to
/// share and clone across threads). A warm [`Session::count`] call
/// performs **no thread spawn, no planning, and no steady-state
/// allocation** — only the matching work itself:
///
/// ```
/// use graphpi_core::engine::GraphPi;
/// use graphpi_graph::generators;
/// use graphpi_pattern::prefab;
///
/// let engine = GraphPi::new(generators::power_law(300, 5, 7));
/// let session = engine.session();
/// let cold = session.count(&prefab::house()).unwrap();
/// let warm = session.count(&prefab::house()).unwrap(); // cached plan, warm pool
/// assert_eq!(cold, warm);
/// assert_eq!(session.cache_stats().hits, 1);
/// ```
///
/// Sessions are fully concurrent: threads sharing a session (or sessions
/// sharing a pool) run their queries as simultaneous jobs on the
/// multi-tenant pool, up to the pool's
/// [`max_in_flight`](crate::config::PoolOptions::max_in_flight) limit —
/// beyond it, extra submitters block until a job completes (backpressure).
/// The plan cache is concurrent as well, and counts stay bit-identical to
/// sequential execution regardless of how many clients are in flight.
#[derive(Debug)]
pub struct Session<'g> {
    engine: &'g GraphPi,
    pool: Arc<WorkerPool>,
    cache: Arc<PlanCache>,
    plan_options: PlanOptions,
    count_options: CountOptions,
    /// Derived once at session construction and passed by reference on
    /// every count (the per-call rebuild this replaces showed up at
    /// serving-path granularity).
    parallel_options: parallel::ParallelOptions,
}

impl<'g> Session<'g> {
    /// The engine this session serves queries for.
    pub fn engine(&self) -> &'g GraphPi {
        self.engine
    }

    /// The persistent worker pool (shared across clones of this session).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The compiled-plan cache (shared across clones of this session).
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Plan-cache counter snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Returns the compiled plan for `pattern`, planning at most once per
    /// (pattern, planning-options, graph) triple. The same cached plan
    /// serves both IEP and enumeration counting.
    pub fn plan_cached(&self, pattern: &Pattern) -> Result<Arc<Plan>, EngineError> {
        let key = PlanKey::new(pattern, &self.plan_options, &self.engine.stats);
        self.cache
            .get_or_plan(key, || self.engine.plan(pattern, self.plan_options))
    }

    /// Re-plans a persisted working set into this session's cache (the
    /// warm-start half of [`PlanCache::saved_keys`]): every key whose graph
    /// fingerprint and planning caps match this session is decoded and
    /// planned through [`Session::plan_cached`], so the first client query
    /// for each of those patterns is a cache **hit** instead of paying
    /// planning latency. Keys for other graphs or other caps are skipped
    /// (counted as inapplicable), as are keys whose pattern bytes fail to
    /// decode or plan — corrupt persistence must never poison a session.
    pub fn warm_start(&self, keys: &[SavedPlanKey]) -> WarmStartReport {
        let mut report = WarmStartReport::default();
        for key in keys {
            if key.graph_fingerprint != self.engine.stats.fingerprint()
                || key.max_restriction_sets != self.plan_options.max_restriction_sets
                || key.max_schedules != self.plan_options.max_schedules
            {
                continue;
            }
            report.applicable += 1;
            if let Some(pattern) = Pattern::from_canonical_bytes(&key.pattern) {
                if self.plan_cached(&pattern).is_ok() {
                    report.warmed += 1;
                }
            }
        }
        report
    }

    /// Counts embeddings of `pattern` on the warm path: cached plan,
    /// persistent pool, session-wide execution options.
    pub fn count(&self, pattern: &Pattern) -> Result<u64, EngineError> {
        let plan = self.plan_cached(pattern)?;
        Ok(self.execute(&plan.plan, &self.count_options, &self.parallel_options))
    }

    /// Counts embeddings with per-call execution options (IEP, hub
    /// acceleration, prefix depth). The worker count is the pool's — the
    /// `threads` field is ignored.
    pub fn count_with(
        &self,
        pattern: &Pattern,
        count_options: CountOptions,
    ) -> Result<u64, EngineError> {
        let plan = self.plan_cached(pattern)?;
        let parallel_options = count_options.parallel_options();
        Ok(self.execute(&plan.plan, &count_options, &parallel_options))
    }

    /// Executes an already-compiled plan on the session pool.
    pub fn execute_count(&self, plan: &ExecutionPlan) -> u64 {
        self.execute(plan, &self.count_options, &self.parallel_options)
    }

    fn execute(
        &self,
        plan: &ExecutionPlan,
        count_options: &CountOptions,
        parallel_options: &parallel::ParallelOptions,
    ) -> u64 {
        // Same contract as `GraphPi::execute_count_prepared`: the per-call
        // knob is authoritative for the process-global kernel dispatch.
        graphpi_graph::vertex_set::set_force_scalar(count_options.scalar_kernels);
        if count_options.hub_bitsets {
            self.pool
                .count_with_hubs(plan, self.engine.hub_index(), parallel_options)
        } else {
            self.pool.count_in(
                plan,
                interp::ExecCtx::new(&self.engine.graph),
                parallel_options,
            )
        }
    }

    /// Returns the cached *full-depth* plan for `pattern`: the same planner
    /// and cache as [`Session::plan_cached`], but compiled with
    /// [`PlanOptions::enable_iep`] off, because execution modes that visit
    /// every embedding cannot use a plan whose innermost loops were
    /// replaced by IEP arithmetic. Count and mode plans occupy distinct
    /// cache entries (the key includes the flag).
    pub fn mode_plan_cached(&self, pattern: &Pattern) -> Result<Arc<Plan>, EngineError> {
        let options = PlanOptions {
            enable_iep: false,
            ..self.plan_options
        };
        let key = PlanKey::new(pattern, &options, &self.engine.stats);
        self.cache
            .get_or_plan(key, || self.engine.plan(pattern, options))
    }

    /// Runs a full-depth plan through the pool in a non-count mode, folding
    /// results into `shared`. Mode jobs are submitted on a low-priority
    /// lane so they never starve concurrent interactive counts.
    fn run_mode(&self, plan: &ExecutionPlan, shared: &ModeShared, count_options: &CountOptions) {
        graphpi_graph::vertex_set::set_force_scalar(count_options.scalar_kernels);
        let options = parallel::ParallelOptions {
            mode: parallel::CountMode::Enumerate,
            ..self.parallel_options
        };
        if count_options.hub_bitsets {
            let hubs = self.engine.hub_index();
            self.pool
                .run_mode_in(plan, interp::ExecCtx::with_hubs(hubs), &options, shared);
        } else {
            self.pool.run_mode_in(
                plan,
                interp::ExecCtx::new(&self.engine.graph),
                &options,
                shared,
            );
        }
    }

    /// Enumerates embeddings of `pattern`, returning at most `limit` of
    /// them (one `Vec` per embedding, indexed by pattern vertex, in
    /// original data-graph ids).
    ///
    /// The `limit` is a hard budget enforced while matching — once `limit`
    /// embeddings are recorded the search stops claiming more, so
    /// enumerating a bounded page out of an astronomically large match set
    /// does not pay for the full search. *Which* embeddings fill a
    /// truncated page is unspecified under parallel execution (tasks race
    /// for the budget); the full set is returned whenever the true count
    /// is within the limit.
    ///
    /// Under [`CountOptions::hub_bitsets`] the returned tuples may pick a
    /// different automorphic representative per subgraph occurrence than
    /// the plain layout (symmetry-breaking restrictions compare ids, and
    /// the hub layout relabels them); the set of occurrences and the count
    /// are identical either way.
    pub fn enumerate(
        &self,
        pattern: &Pattern,
        limit: u64,
    ) -> Result<Vec<Vec<VertexId>>, EngineError> {
        self.enumerate_with(pattern, limit, self.count_options)
    }

    /// [`Session::enumerate`] with per-call [`CountOptions`] overriding the
    /// session defaults (only `hub_bitsets` and `scalar_kernels` matter to
    /// enumeration; `use_iep` is ignored because mode plans never use IEP).
    pub fn enumerate_with(
        &self,
        pattern: &Pattern,
        limit: u64,
        options: CountOptions,
    ) -> Result<Vec<Vec<VertexId>>, EngineError> {
        let plan = self.mode_plan_cached(pattern)?;
        let shared = ModeShared::enumerate(limit);
        self.run_mode(&plan.plan, &shared, &options);
        let ModeShared::Enumerate { out, .. } = &shared else {
            unreachable!("constructed as Enumerate above")
        };
        let flat = std::mem::take(&mut *out.lock().expect("enumeration sink poisoned"));
        let n = plan.plan.num_loops();
        let hubs = options.hub_bitsets.then(|| self.engine.hub_index());
        let mut embeddings = Vec::with_capacity(flat.len() / n.max(1));
        for chunk in flat.chunks_exact(n) {
            let mut by_pattern_vertex = vec![0 as VertexId; n];
            for (i, &v) in chunk.iter().enumerate() {
                let v = hubs.map_or(v, |h| h.original_id(v));
                by_pattern_vertex[plan.plan.loops[i].pattern_vertex] = v;
            }
            embeddings.push(by_pattern_vertex);
        }
        Ok(embeddings)
    }

    /// Counts, for every data vertex, the embeddings of `pattern` it
    /// participates in (its *orbit count*), indexed by original vertex id.
    ///
    /// Each embedding contributes 1 to each of its `pattern.num_vertices()`
    /// member vertices, so the returned counts sum to
    /// `pattern_size × total_count`.
    pub fn count_per_vertex(&self, pattern: &Pattern) -> Result<Vec<u64>, EngineError> {
        self.count_per_vertex_with(pattern, self.count_options)
    }

    /// [`Session::count_per_vertex`] with per-call [`CountOptions`]
    /// overriding the session defaults.
    pub fn count_per_vertex_with(
        &self,
        pattern: &Pattern,
        options: CountOptions,
    ) -> Result<Vec<u64>, EngineError> {
        let plan = self.mode_plan_cached(pattern)?;
        let num_vertices = self.engine.graph.num_vertices();
        let shared = ModeShared::orbit(num_vertices);
        self.run_mode(&plan.plan, &shared, &options);
        let ModeShared::Orbit { counts } = &shared else {
            unreachable!("constructed as Orbit above")
        };
        let mut result = vec![0u64; num_vertices];
        if options.hub_bitsets {
            // The hub layout relabels vertices degree-descending; translate
            // back so callers index by original id.
            let hubs = self.engine.hub_index();
            for (new_id, count) in counts.iter().enumerate() {
                result[hubs.original_id(new_id as VertexId) as usize] =
                    count.load(Ordering::Relaxed);
            }
        } else {
            for (v, count) in counts.iter().enumerate() {
                result[v] = count.load(Ordering::Relaxed);
            }
        }
        Ok(result)
    }

    /// Estimates the embedding count of `pattern` by uniformly sampling
    /// search-prefix subtrees with probability `rate` and counting only the
    /// sampled subtrees exactly (Horvitz–Thompson estimation).
    ///
    /// A fixed `seed` reproduces the same sample (and therefore the same
    /// estimate) regardless of thread count; a `rate ≥ 1` degenerates to
    /// the exact count with zero standard error. Fails with
    /// [`EngineError::InvalidSampleRate`] unless `rate` is finite and
    /// positive.
    pub fn count_approx(
        &self,
        pattern: &Pattern,
        rate: f64,
        seed: u64,
    ) -> Result<ApproxCount, EngineError> {
        self.count_approx_with(pattern, rate, seed, self.count_options)
    }

    /// [`Session::count_approx`] with per-call [`CountOptions`] overriding
    /// the session defaults.
    pub fn count_approx_with(
        &self,
        pattern: &Pattern,
        rate: f64,
        seed: u64,
        options: CountOptions,
    ) -> Result<ApproxCount, EngineError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(EngineError::InvalidSampleRate);
        }
        let plan = self.mode_plan_cached(pattern)?;
        let shared = ModeShared::sample(seed, rate);
        self.run_mode(&plan.plan, &shared, &options);
        let ModeShared::Sample { accum, .. } = &shared else {
            unreachable!("constructed as Sample above")
        };
        let accum = accum.lock().expect("sample accumulator poisoned");
        let estimate = accum.estimate(rate);
        Ok(ApproxCount {
            estimate: estimate.estimate,
            stderr: estimate.stderr,
            sampled_tasks: estimate.sampled,
            total_tasks: estimate.total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpi_graph::generators;
    use graphpi_pattern::automorphism::automorphism_count;
    use graphpi_pattern::prefab;

    fn engine() -> GraphPi {
        GraphPi::new(generators::power_law(260, 5, 12))
    }

    #[test]
    fn plan_reports_metadata() {
        let engine = engine();
        let plan = engine
            .plan(&prefab::house(), PlanOptions::default())
            .unwrap();
        assert!(plan.candidates_considered > 0);
        assert!(plan.schedules_generated > 0);
        assert!(plan.restriction_sets_generated > 0);
        assert!(plan.predicted_cost > 0.0);
        assert_eq!(plan.plan.num_loops(), 5);
    }

    #[test]
    fn count_errors_for_bad_patterns() {
        let engine = engine();
        assert_eq!(
            engine.count(&Pattern::empty(0)),
            Err(EngineError::EmptyPattern)
        );
        let disconnected = Pattern::new(4, &[(0, 1), (2, 3)]);
        assert_eq!(
            engine.count(&disconnected),
            Err(EngineError::DisconnectedPattern)
        );
        let big = prefab::clique(9);
        assert!(matches!(
            engine.count(&big),
            Err(EngineError::PatternTooLarge { .. })
        ));
    }

    #[test]
    fn count_matches_naive_expectation_on_triangles() {
        let g = generators::power_law(300, 5, 44);
        let expected = graphpi_graph::triangles::count_triangles(&g);
        let engine = GraphPi::new(g);
        assert_eq!(engine.count(&prefab::triangle()).unwrap(), expected);
    }

    #[test]
    fn execution_modes_agree() {
        let engine = engine();
        for (name, pattern) in prefab::evaluation_patterns().into_iter().take(4) {
            let plan = engine.plan(&pattern, PlanOptions::default()).unwrap();
            let sequential =
                engine.execute_count(&plan.plan, CountOptions::sequential_enumeration());
            let modes = [
                ("iep", true, 1, false),
                ("parallel", false, 4, false),
                ("parallel-iep", true, 4, false),
                ("hub", false, 1, true),
                ("hub-iep", true, 1, true),
                ("hub-parallel", false, 4, true),
                ("hub-parallel-iep", true, 4, true),
            ];
            for (mode_name, use_iep, threads, hub_bitsets) in modes {
                let got = engine.execute_count(
                    &plan.plan,
                    CountOptions {
                        use_iep,
                        threads,
                        prefix_depth: None,
                        hub_bitsets,
                        scalar_kernels: false,
                    },
                );
                assert_eq!(got, sequential, "{name} ({mode_name})");
            }
        }
    }

    #[test]
    fn listing_length_matches_count() {
        let engine = GraphPi::new(generators::erdos_renyi(120, 700, 3));
        let pattern = prefab::rectangle();
        let count = engine
            .count_with(
                &pattern,
                PlanOptions::default(),
                CountOptions::sequential_enumeration(),
            )
            .unwrap();
        let listed = engine.list(&pattern).unwrap();
        assert_eq!(listed.len() as u64, count);
    }

    #[test]
    fn selected_plan_is_reasonably_good() {
        // The model-selected configuration must not be worse than the worst
        // candidate (sanity floor for the Figure 11 experiment).
        let engine = engine();
        let pattern = prefab::house();
        let plan = engine.plan(&pattern, PlanOptions::default()).unwrap();
        let schedules = efficient_schedules(&pattern);
        let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
        let mut worst = 0.0f64;
        for s in &schedules {
            for set in sets.iter().take(4) {
                let estimate =
                    engine.predict(&Configuration::new(pattern.clone(), s.clone(), set.clone()));
                worst = worst.max(estimate.total);
            }
        }
        assert!(plan.predicted_cost <= worst);
    }

    #[test]
    fn unrestricted_configuration_overcounts_by_aut() {
        let engine = GraphPi::new(generators::erdos_renyi(100, 500, 19));
        let pattern = prefab::rectangle();
        let schedule = Schedule::new(&pattern, vec![0, 1, 2, 3]);
        let restricted = engine
            .count_with(
                &pattern,
                PlanOptions::default(),
                CountOptions::sequential_enumeration(),
            )
            .unwrap();
        let unrestricted = engine.count_with_configuration(
            schedule,
            RestrictionSet::empty(),
            &pattern,
            CountOptions::sequential_enumeration(),
        );
        assert_eq!(
            restricted * automorphism_count(&pattern) as u64,
            unrestricted
        );
    }

    #[test]
    fn preprocessing_time_is_recorded() {
        let engine = engine();
        let plan = engine.plan(&prefab::p3(), PlanOptions::default()).unwrap();
        assert!(plan.preprocessing_time.as_nanos() > 0);
    }

    fn small_session_options() -> (PoolOptions, PlanOptions, CountOptions) {
        (
            PoolOptions {
                threads: 2,
                cache_capacity: 8,
                ..PoolOptions::default()
            },
            PlanOptions::default(),
            CountOptions::default(),
        )
    }

    #[test]
    fn session_counts_match_engine_counts() {
        let engine = engine();
        let (pool, plan_opts, count_opts) = small_session_options();
        let session = engine.session_with(pool, plan_opts, count_opts);
        for (name, pattern) in prefab::evaluation_patterns().into_iter().take(3) {
            assert_eq!(
                session.count(&pattern).unwrap(),
                engine.count(&pattern).unwrap(),
                "{name}"
            );
        }
    }

    #[test]
    fn session_count_with_overrides_execution_options() {
        let engine = engine();
        let (pool, plan_opts, count_opts) = small_session_options();
        let session = engine.session_with(pool, plan_opts, count_opts);
        let pattern = prefab::house();
        let expected = engine.count(&pattern).unwrap();
        for (use_iep, hub_bitsets) in [(false, false), (true, false), (false, true), (true, true)] {
            let got = session
                .count_with(
                    &pattern,
                    CountOptions {
                        use_iep,
                        hub_bitsets,
                        ..CountOptions::default()
                    },
                )
                .unwrap();
            assert_eq!(got, expected, "iep={use_iep} hub={hub_bitsets}");
        }
    }

    #[test]
    fn plan_cache_counts_hits_and_misses() {
        let engine = engine();
        let (pool, plan_opts, count_opts) = small_session_options();
        let session = engine.session_with(pool, plan_opts, count_opts);
        let pattern = prefab::rectangle();
        session.count(&pattern).unwrap();
        session.count(&pattern).unwrap();
        session.count(&pattern).unwrap();
        let stats = session.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.len, 1);
        // A different pattern is a fresh miss.
        session.count(&prefab::triangle()).unwrap();
        let stats = session.cache_stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.len, 2);
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let engine = engine();
        let session = engine.session_with(
            PoolOptions {
                threads: 1,
                cache_capacity: 2,
                ..PoolOptions::default()
            },
            PlanOptions::default(),
            CountOptions::default(),
        );
        let a = prefab::triangle();
        let b = prefab::rectangle();
        let c = prefab::house();
        session.count(&a).unwrap(); // cache: [a]
        session.count(&b).unwrap(); // cache: [a, b]
        session.count(&a).unwrap(); // hit; b is now LRU
        session.count(&c).unwrap(); // evicts b
        let stats = session.cache_stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.len, 2);
        session.count(&a).unwrap(); // still cached
        assert_eq!(session.cache_stats().hits, 2);
        session.count(&b).unwrap(); // must re-plan
        assert_eq!(session.cache_stats().misses, 4);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let engine = engine();
        let session = engine.session_with(
            PoolOptions {
                threads: 1,
                cache_capacity: 0,
                ..PoolOptions::default()
            },
            PlanOptions::default(),
            CountOptions::default(),
        );
        let pattern = prefab::triangle();
        let expected = engine.count(&pattern).unwrap();
        assert_eq!(session.count(&pattern).unwrap(), expected);
        assert_eq!(session.count(&pattern).unwrap(), expected);
        let stats = session.cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.len, 0);
    }

    #[test]
    fn shared_cache_keys_on_graph_fingerprint() {
        // Two engines over different graphs share one cache and one pool;
        // the fingerprint in the key keeps their plans (and counts) apart.
        let engine_a = GraphPi::new(generators::power_law(220, 5, 11));
        let engine_b = GraphPi::new(generators::erdos_renyi(150, 900, 12));
        let pool = Arc::new(WorkerPool::new(2));
        let cache = Arc::new(PlanCache::new(8));
        let session_a = engine_a.session_shared(
            Arc::clone(&pool),
            Arc::clone(&cache),
            PlanOptions::default(),
            CountOptions::default(),
        );
        let session_b = engine_b.session_shared(
            Arc::clone(&pool),
            Arc::clone(&cache),
            PlanOptions::default(),
            CountOptions::default(),
        );
        let pattern = prefab::house();
        assert_eq!(
            session_a.count(&pattern).unwrap(),
            engine_a.count(&pattern).unwrap()
        );
        assert_eq!(
            session_b.count(&pattern).unwrap(),
            engine_b.count(&pattern).unwrap()
        );
        // Same pattern, different graphs: two cache entries, zero hits.
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.len, 2);
        assert_eq!(stats.hits, 0);
        // Re-counting hits each engine's own entry.
        session_a.count(&pattern).unwrap();
        session_b.count(&pattern).unwrap();
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn session_is_usable_from_multiple_threads() {
        let engine = engine();
        let (pool, plan_opts, count_opts) = small_session_options();
        let session = engine.session_with(pool, plan_opts, count_opts);
        let pattern = prefab::house();
        let expected = engine.count(&pattern).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let session = &session;
                let pattern = &pattern;
                scope.spawn(move || {
                    for _ in 0..4 {
                        assert_eq!(session.count(pattern).unwrap(), expected);
                    }
                });
            }
        });
        let stats = session.cache_stats();
        assert_eq!(stats.hits + stats.misses, 12);
        assert!(stats.misses >= 1);
    }

    #[test]
    fn enumerate_matches_list_as_multiset() {
        let engine = engine();
        let (pool, plan_opts, count_opts) = small_session_options();
        let session = engine.session_with(pool, plan_opts, count_opts);
        let pattern = prefab::house();
        let mut expected = engine.list(&pattern).unwrap();
        let mut got = session.enumerate(&pattern, u64::MAX).unwrap();
        expected.sort();
        got.sort();
        assert_eq!(got, expected);
        // A tight limit returns exactly that many embeddings, each of which
        // is a genuine member of the full set.
        let limited = session.enumerate(&pattern, 5).unwrap();
        assert_eq!(limited.len(), 5);
        for emb in &limited {
            assert!(expected.binary_search(emb).is_ok());
        }
    }

    #[test]
    fn per_vertex_counts_sum_to_pattern_size_times_count() {
        let engine = engine();
        let (pool, plan_opts, count_opts) = small_session_options();
        let session = engine.session_with(pool, plan_opts, count_opts);
        let pattern = prefab::house();
        let total = session.count(&pattern).unwrap();
        let per_vertex = session.count_per_vertex(&pattern).unwrap();
        assert_eq!(per_vertex.len(), engine.graph().num_vertices());
        assert_eq!(
            per_vertex.iter().sum::<u64>(),
            pattern.num_vertices() as u64 * total
        );
    }

    #[test]
    fn approx_count_is_exact_at_rate_one_and_seed_stable() {
        let engine = engine();
        let (pool, plan_opts, count_opts) = small_session_options();
        let session = engine.session_with(pool, plan_opts, count_opts);
        let pattern = prefab::house();
        let total = session.count(&pattern).unwrap();

        let exact = session.count_approx(&pattern, 1.0, 7).unwrap();
        assert_eq!(exact.estimate, total as f64);
        assert_eq!(exact.stderr, 0.0);
        assert_eq!(exact.sampled_tasks, exact.total_tasks);

        let a = session.count_approx(&pattern, 0.5, 42).unwrap();
        let b = session.count_approx(&pattern, 0.5, 42).unwrap();
        assert_eq!(a, b, "fixed seed must reproduce the estimate");
        assert!(a.sampled_tasks <= a.total_tasks);
        assert!(a.estimate >= 0.0);

        assert_eq!(
            session.count_approx(&pattern, 0.0, 1),
            Err(EngineError::InvalidSampleRate)
        );
        assert_eq!(
            session.count_approx(&pattern, f64::NAN, 1),
            Err(EngineError::InvalidSampleRate)
        );
    }

    #[test]
    fn mode_plans_share_the_cache_but_not_the_entry() {
        let engine = engine();
        let (pool, plan_opts, count_opts) = small_session_options();
        let session = engine.session_with(pool, plan_opts, count_opts);
        let pattern = prefab::house();
        session.count(&pattern).unwrap();
        session.enumerate(&pattern, 1).unwrap();
        // Distinct entries: the count plan (IEP) and the full-depth plan.
        assert_eq!(session.cache_stats().len, 2);
        session.count_per_vertex(&pattern).unwrap();
        session.count_approx(&pattern, 0.5, 3).unwrap();
        // Orbit and sample reuse the full-depth entry.
        let stats = session.cache_stats();
        assert_eq!(stats.len, 2);
        assert!(stats.hits >= 2);
        // Persistence only snapshots count-path keys.
        assert_eq!(session.cache().saved_keys().len(), 1);
    }

    #[test]
    fn modes_agree_under_hub_layout() {
        let engine = engine();
        let pattern = prefab::house();
        let (pool, plan_opts, _) = small_session_options();
        let plain = engine.session_with(pool.clone(), plan_opts, CountOptions::default());
        let hub = engine.session_with(
            pool,
            plan_opts,
            CountOptions {
                hub_bitsets: true,
                ..CountOptions::default()
            },
        );
        // Restrictions compare ids, and the hub layout relabels them, so
        // hub enumeration may pick a different automorphic representative
        // per subgraph occurrence. The occurrences themselves (vertex
        // sets) must agree exactly, and every hub tuple must be a valid
        // embedding in original ids.
        let plain_embs = plain.enumerate(&pattern, u64::MAX).unwrap();
        let hub_embs = hub.enumerate(&pattern, u64::MAX).unwrap();
        assert_eq!(hub_embs.len(), plain_embs.len());
        let occurrences = |embs: &[Vec<VertexId>]| {
            let mut sets: Vec<Vec<VertexId>> = embs
                .iter()
                .map(|e| {
                    let mut s = e.clone();
                    s.sort_unstable();
                    s
                })
                .collect();
            sets.sort();
            sets
        };
        assert_eq!(
            occurrences(&hub_embs),
            occurrences(&plain_embs),
            "hub relabeling must be invisible to the matched occurrences"
        );
        for emb in &hub_embs {
            for a in 0..pattern.num_vertices() {
                for b in (a + 1)..pattern.num_vertices() {
                    if pattern.has_edge(a, b) {
                        assert!(
                            engine.graph().has_edge(emb[a], emb[b]),
                            "hub-enumerated tuple is not a valid embedding"
                        );
                    }
                }
            }
        }
        assert_eq!(
            plain.count_per_vertex(&pattern).unwrap(),
            hub.count_per_vertex(&pattern).unwrap(),
            "hub relabeling must be invisible to orbit counts"
        );
    }

    #[test]
    fn cache_clear_preserves_counters() {
        let cache = PlanCache::new(4);
        let engine = engine();
        let session = engine.session_shared(
            Arc::new(WorkerPool::new(1)),
            Arc::new(cache),
            PlanOptions::default(),
            CountOptions::default(),
        );
        session.count(&prefab::triangle()).unwrap();
        session.cache().clear();
        let stats = session.cache_stats();
        assert_eq!(stats.len, 0);
        assert_eq!(stats.misses, 1);
        session.count(&prefab::triangle()).unwrap();
        assert_eq!(session.cache_stats().misses, 2);
    }
}
