//! High-level GraphPi engine: preprocessing, planning, and execution.
//!
//! [`GraphPi`] ties the pieces together the way Figure 3 of the paper does:
//!
//! 1. **Configuration generation** — restriction sets from the 2-cycle
//!    algorithm and schedules from the 2-phase generator.
//! 2. **Performance prediction** — every (schedule × restriction set)
//!    combination is ranked by the cost model; the cheapest becomes the
//!    plan.
//! 3. **Execution** — the plan runs on the data graph sequentially, in
//!    parallel, or on the simulated cluster, with or without IEP counting.

use crate::config::{Configuration, ExecutionPlan, MAX_LOOPS};
use crate::error::EngineError;
use crate::exec::{iep, interp, parallel};
use crate::perf_model::{select_best, CostEstimate, PerformanceModel};
use crate::schedule::{efficient_schedules, Schedule};
use graphpi_graph::csr::{CsrGraph, VertexId};
use graphpi_graph::hub::{HubGraph, HubOptions};
use graphpi_graph::stats::GraphStats;
use graphpi_pattern::pattern::Pattern;
use graphpi_pattern::restriction::{generate_restriction_sets, GenerationOptions, RestrictionSet};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Largest pattern size the planner accepts (the paper evaluates up to 6–7
/// vertices; preprocessing cost grows factorially beyond that). Equal to
/// [`MAX_LOOPS`], the bound the execution hot path relies on for its inline
/// per-task state.
pub const MAX_PATTERN_VERTICES: usize = MAX_LOOPS;

/// Options controlling configuration generation and selection.
#[derive(Debug, Clone, Copy)]
pub struct PlanOptions {
    /// Upper bound on the number of restriction sets combined with each
    /// schedule (the full family can be large for highly symmetric
    /// patterns; the best sets are almost always among the smallest).
    pub max_restriction_sets: usize,
    /// Upper bound on the number of schedules considered (0 = no limit).
    pub max_schedules: usize,
}

impl Default for PlanOptions {
    fn default() -> Self {
        Self {
            max_restriction_sets: 64,
            max_schedules: 0,
        }
    }
}

/// Options controlling plan execution.
#[derive(Debug, Clone, Copy)]
pub struct CountOptions {
    /// Use the Inclusion-Exclusion Principle when only counting.
    pub use_iep: bool,
    /// Number of worker threads (0 = all cores, 1 = sequential).
    pub threads: usize,
    /// Outer-loop prefix depth for parallel tasks (None = heuristic).
    pub prefix_depth: Option<usize>,
    /// Execute against the hub-accelerated layout (degree-descending
    /// relabeling + bitset rows for the high-degree core). The index is
    /// built lazily once per engine and cached; counts are bit-identical
    /// with this on or off.
    pub hub_bitsets: bool,
}

impl Default for CountOptions {
    fn default() -> Self {
        Self {
            use_iep: true,
            threads: 0,
            prefix_depth: None,
            hub_bitsets: false,
        }
    }
}

impl CountOptions {
    /// Sequential, enumeration-only execution (what the paper uses when
    /// comparing against GraphZero and Fractal).
    pub fn sequential_enumeration() -> Self {
        Self {
            use_iep: false,
            threads: 1,
            ..Self::default()
        }
    }
}

/// A selected plan together with planning metadata.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The compiled best configuration.
    pub plan: ExecutionPlan,
    /// Predicted cost of the selected configuration.
    pub predicted_cost: f64,
    /// Number of (schedule × restriction set) candidates that were ranked.
    pub candidates_considered: usize,
    /// Number of schedules produced by the 2-phase generator.
    pub schedules_generated: usize,
    /// Number of restriction sets produced by the 2-cycle algorithm.
    pub restriction_sets_generated: usize,
    /// Wall-clock time spent on preprocessing (configuration generation +
    /// performance prediction), the quantity Table III reports.
    pub preprocessing_time: Duration,
}

/// The GraphPi engine bound to one data graph.
#[derive(Debug, Clone)]
pub struct GraphPi {
    graph: CsrGraph,
    stats: GraphStats,
    /// Lazily built hub-acceleration index, shared across clones.
    hub: OnceLock<Arc<HubGraph>>,
}

impl GraphPi {
    /// Builds the engine, computing the graph statistics (vertex/edge and
    /// triangle counts) the performance model needs. This is the
    /// graph-dependent part of preprocessing and is done once per graph.
    pub fn new(graph: CsrGraph) -> Self {
        let stats = GraphStats::compute(&graph);
        Self {
            graph,
            stats,
            hub: OnceLock::new(),
        }
    }

    /// Builds the engine with precomputed statistics (e.g. loaded from disk).
    pub fn with_stats(graph: CsrGraph, stats: GraphStats) -> Self {
        Self {
            graph,
            stats,
            hub: OnceLock::new(),
        }
    }

    /// The underlying data graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The cached statistics.
    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    /// The hub-acceleration index (degree-descending relabeled graph +
    /// bitset rows for the high-degree core), built on first use and cached
    /// for the lifetime of the engine.
    pub fn hub_index(&self) -> &HubGraph {
        self.hub
            .get_or_init(|| Arc::new(HubGraph::build(&self.graph, HubOptions::default())))
    }

    fn check_pattern(&self, pattern: &Pattern) -> Result<(), EngineError> {
        if pattern.num_vertices() == 0 {
            return Err(EngineError::EmptyPattern);
        }
        if pattern.num_vertices() > MAX_PATTERN_VERTICES {
            return Err(EngineError::PatternTooLarge {
                vertices: pattern.num_vertices(),
                max: MAX_PATTERN_VERTICES,
            });
        }
        if !pattern.is_connected() {
            return Err(EngineError::DisconnectedPattern);
        }
        Ok(())
    }

    /// Runs configuration generation and performance prediction, returning
    /// the selected plan (Figure 3's preprocessing pipeline).
    pub fn plan(&self, pattern: &Pattern, options: PlanOptions) -> Result<Plan, EngineError> {
        self.check_pattern(pattern)?;
        let start = Instant::now();

        let restriction_sets = generate_restriction_sets(pattern, GenerationOptions::default());
        let schedules = efficient_schedules(pattern);
        if restriction_sets.is_empty() || schedules.is_empty() {
            return Err(EngineError::NoConfiguration);
        }
        let restriction_sets_generated = restriction_sets.len();
        let schedules_generated = schedules.len();

        // Prefer smaller restriction sets when capping: they filter earlier
        // in the loop nest on average and keep ranking cheap.
        let mut sets = restriction_sets;
        sets.sort_by_key(|s| s.len());
        if options.max_restriction_sets > 0 {
            sets.truncate(options.max_restriction_sets);
        }
        let mut schedules = schedules;
        if options.max_schedules > 0 {
            schedules.truncate(options.max_schedules);
        }

        let mut candidates: Vec<Configuration> = Vec::with_capacity(sets.len() * schedules.len());
        for schedule in &schedules {
            for set in &sets {
                candidates.push(Configuration::new(
                    pattern.clone(),
                    schedule.clone(),
                    set.clone(),
                ));
            }
        }

        let model = PerformanceModel::new(self.stats, pattern.num_vertices());
        let (best_idx, estimates) = select_best(&model, &candidates);
        let plan = candidates[best_idx].compile();
        Ok(Plan {
            plan,
            predicted_cost: estimates[best_idx].total,
            candidates_considered: candidates.len(),
            schedules_generated,
            restriction_sets_generated,
            preprocessing_time: start.elapsed(),
        })
    }

    /// Predicts the cost of an explicit configuration with this graph's
    /// statistics (used by the model-accuracy experiments).
    pub fn predict(&self, config: &Configuration) -> CostEstimate {
        let model = PerformanceModel::new(self.stats, config.pattern.num_vertices());
        model.predict_configuration(config)
    }

    /// Counts embeddings of `pattern` with default planning and execution
    /// options.
    pub fn count(&self, pattern: &Pattern) -> Result<u64, EngineError> {
        let plan = self.plan(pattern, PlanOptions::default())?;
        Ok(self.execute_count(&plan.plan, CountOptions::default()))
    }

    /// Counts embeddings with explicit execution options.
    pub fn count_with(
        &self,
        pattern: &Pattern,
        plan_options: PlanOptions,
        count_options: CountOptions,
    ) -> Result<u64, EngineError> {
        let plan = self.plan(pattern, plan_options)?;
        Ok(self.execute_count(&plan.plan, count_options))
    }

    /// Executes an already-compiled plan and returns the embedding count.
    pub fn execute_count(&self, plan: &ExecutionPlan, options: CountOptions) -> u64 {
        let threads = if options.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            options.threads
        };
        let parallel_options = |use_iep: bool| parallel::ParallelOptions {
            threads,
            prefix_depth: options.prefix_depth,
            mode: if use_iep {
                parallel::CountMode::Iep
            } else {
                parallel::CountMode::Enumerate
            },
            ..Default::default()
        };
        if options.hub_bitsets {
            let hubs = self.hub_index();
            return match (options.use_iep, threads) {
                (false, 1) => interp::count_embeddings_hub(plan, hubs),
                (true, 1) => iep::count_embeddings_iep_hub(plan, hubs),
                (use_iep, _) => {
                    parallel::count_parallel_with_hubs(plan, hubs, parallel_options(use_iep))
                }
            };
        }
        match (options.use_iep, threads) {
            (false, 1) => interp::count_embeddings(plan, &self.graph),
            (true, 1) => iep::count_embeddings_iep(plan, &self.graph),
            (use_iep, _) => parallel::count_parallel(plan, &self.graph, parallel_options(use_iep)),
        }
    }

    /// Lists every embedding of `pattern` (one `Vec` per embedding, indexed
    /// by pattern vertex).
    pub fn list(&self, pattern: &Pattern) -> Result<Vec<Vec<VertexId>>, EngineError> {
        let plan = self.plan(pattern, PlanOptions::default())?;
        Ok(interp::list_embeddings(&plan.plan, &self.graph))
    }

    /// Counts embeddings with an explicitly provided configuration,
    /// bypassing the planner (used by the schedule/restriction breakdown
    /// experiments).
    pub fn count_with_configuration(
        &self,
        schedule: Schedule,
        restrictions: RestrictionSet,
        pattern: &Pattern,
        options: CountOptions,
    ) -> u64 {
        let plan = Configuration::new(pattern.clone(), schedule, restrictions).compile();
        self.execute_count(&plan, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpi_graph::generators;
    use graphpi_pattern::automorphism::automorphism_count;
    use graphpi_pattern::prefab;

    fn engine() -> GraphPi {
        GraphPi::new(generators::power_law(260, 5, 12))
    }

    #[test]
    fn plan_reports_metadata() {
        let engine = engine();
        let plan = engine
            .plan(&prefab::house(), PlanOptions::default())
            .unwrap();
        assert!(plan.candidates_considered > 0);
        assert!(plan.schedules_generated > 0);
        assert!(plan.restriction_sets_generated > 0);
        assert!(plan.predicted_cost > 0.0);
        assert_eq!(plan.plan.num_loops(), 5);
    }

    #[test]
    fn count_errors_for_bad_patterns() {
        let engine = engine();
        assert_eq!(
            engine.count(&Pattern::empty(0)),
            Err(EngineError::EmptyPattern)
        );
        let disconnected = Pattern::new(4, &[(0, 1), (2, 3)]);
        assert_eq!(
            engine.count(&disconnected),
            Err(EngineError::DisconnectedPattern)
        );
        let big = prefab::clique(9);
        assert!(matches!(
            engine.count(&big),
            Err(EngineError::PatternTooLarge { .. })
        ));
    }

    #[test]
    fn count_matches_naive_expectation_on_triangles() {
        let g = generators::power_law(300, 5, 44);
        let expected = graphpi_graph::triangles::count_triangles(&g);
        let engine = GraphPi::new(g);
        assert_eq!(engine.count(&prefab::triangle()).unwrap(), expected);
    }

    #[test]
    fn execution_modes_agree() {
        let engine = engine();
        for (name, pattern) in prefab::evaluation_patterns().into_iter().take(4) {
            let plan = engine.plan(&pattern, PlanOptions::default()).unwrap();
            let sequential =
                engine.execute_count(&plan.plan, CountOptions::sequential_enumeration());
            let modes = [
                ("iep", true, 1, false),
                ("parallel", false, 4, false),
                ("parallel-iep", true, 4, false),
                ("hub", false, 1, true),
                ("hub-iep", true, 1, true),
                ("hub-parallel", false, 4, true),
                ("hub-parallel-iep", true, 4, true),
            ];
            for (mode_name, use_iep, threads, hub_bitsets) in modes {
                let got = engine.execute_count(
                    &plan.plan,
                    CountOptions {
                        use_iep,
                        threads,
                        prefix_depth: None,
                        hub_bitsets,
                    },
                );
                assert_eq!(got, sequential, "{name} ({mode_name})");
            }
        }
    }

    #[test]
    fn listing_length_matches_count() {
        let engine = GraphPi::new(generators::erdos_renyi(120, 700, 3));
        let pattern = prefab::rectangle();
        let count = engine
            .count_with(
                &pattern,
                PlanOptions::default(),
                CountOptions::sequential_enumeration(),
            )
            .unwrap();
        let listed = engine.list(&pattern).unwrap();
        assert_eq!(listed.len() as u64, count);
    }

    #[test]
    fn selected_plan_is_reasonably_good() {
        // The model-selected configuration must not be worse than the worst
        // candidate (sanity floor for the Figure 11 experiment).
        let engine = engine();
        let pattern = prefab::house();
        let plan = engine.plan(&pattern, PlanOptions::default()).unwrap();
        let schedules = efficient_schedules(&pattern);
        let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
        let mut worst = 0.0f64;
        for s in &schedules {
            for set in sets.iter().take(4) {
                let estimate =
                    engine.predict(&Configuration::new(pattern.clone(), s.clone(), set.clone()));
                worst = worst.max(estimate.total);
            }
        }
        assert!(plan.predicted_cost <= worst);
    }

    #[test]
    fn unrestricted_configuration_overcounts_by_aut() {
        let engine = GraphPi::new(generators::erdos_renyi(100, 500, 19));
        let pattern = prefab::rectangle();
        let schedule = Schedule::new(&pattern, vec![0, 1, 2, 3]);
        let restricted = engine
            .count_with(
                &pattern,
                PlanOptions::default(),
                CountOptions::sequential_enumeration(),
            )
            .unwrap();
        let unrestricted = engine.count_with_configuration(
            schedule,
            RestrictionSet::empty(),
            &pattern,
            CountOptions::sequential_enumeration(),
        );
        assert_eq!(
            restricted * automorphism_count(&pattern) as u64,
            unrestricted
        );
    }

    #[test]
    fn preprocessing_time_is_recorded() {
        let engine = engine();
        let plan = engine.plan(&prefab::p3(), PlanOptions::default()).unwrap();
        assert!(plan.preprocessing_time.as_nanos() > 0);
    }
}
