//! Sequential nested-loop execution of a compiled plan.
//!
//! The interpreter walks the loop nest described by an
//! [`crate::config::ExecutionPlan`]: loop `i` binds pattern
//! vertex `plan.loops[i].pattern_vertex` to a data vertex drawn from the
//! intersection of the neighborhoods of its already-bound pattern neighbors,
//! subject to the restriction bounds and to injectivity. Reaching the last
//! loop yields embeddings.
//!
//! This is the executable counterpart of the code GraphPi generates and
//! compiles (Figure 5(b)); [`crate::codegen`] renders the same plan as
//! source text.

use crate::config::{ExecutionPlan, LoopBound};
use graphpi_graph::csr::{CsrGraph, VertexId};
use graphpi_graph::vertex_set;

/// Reusable per-depth scratch buffers for candidate-set materialisation.
#[derive(Debug, Default)]
pub struct SearchBuffers {
    buffers: Vec<Vec<VertexId>>,
}

impl SearchBuffers {
    /// Creates buffers for a plan with `depth` loops.
    pub fn new(depth: usize) -> Self {
        Self {
            buffers: vec![Vec::new(); depth],
        }
    }
}

/// Counts every embedding of the plan's pattern in the data graph.
pub fn count_embeddings(plan: &ExecutionPlan, graph: &CsrGraph) -> u64 {
    let mut count = 0u64;
    for_each_embedding(plan, graph, |_| count += 1);
    count
}

/// Collects every embedding as a vector of data vertices indexed **by
/// pattern vertex** (i.e. `result[e][p]` is the data vertex that embedding
/// `e` assigns to pattern vertex `p`).
pub fn list_embeddings(plan: &ExecutionPlan, graph: &CsrGraph) -> Vec<Vec<VertexId>> {
    let n = plan.num_loops();
    let mut out = Vec::new();
    for_each_embedding(plan, graph, |bound| {
        let mut by_pattern_vertex = vec![0 as VertexId; n];
        for (i, &v) in bound.iter().enumerate() {
            by_pattern_vertex[plan.loops[i].pattern_vertex] = v;
        }
        out.push(by_pattern_vertex);
    });
    out
}

/// Invokes `visitor` once per embedding with the bound data vertices in
/// **schedule order** (`bound[i]` is the vertex chosen by loop `i`).
pub fn for_each_embedding<F: FnMut(&[VertexId])>(
    plan: &ExecutionPlan,
    graph: &CsrGraph,
    mut visitor: F,
) {
    let n = plan.num_loops();
    if n == 0 {
        return;
    }
    let mut bound: Vec<VertexId> = Vec::with_capacity(n);
    let mut buffers = SearchBuffers::new(n);
    for v in graph.vertices() {
        bound.push(v);
        if n == 1 {
            visitor(&bound);
        } else {
            recurse(
                plan,
                graph,
                1,
                &mut bound,
                &mut buffers.buffers,
                &mut visitor,
            );
        }
        bound.pop();
    }
}

/// Counts embeddings that extend a fixed prefix of bound vertices (the
/// values chosen by the first `prefix.len()` loops). Used by the parallel
/// and distributed executors, whose tasks are exactly such prefixes.
pub fn count_from_prefix(plan: &ExecutionPlan, graph: &CsrGraph, prefix: &[VertexId]) -> u64 {
    let n = plan.num_loops();
    assert!(prefix.len() <= n && !prefix.is_empty());
    let mut bound: Vec<VertexId> = prefix.to_vec();
    if prefix.len() == n {
        return 1;
    }
    let mut buffers = SearchBuffers::new(n);
    let mut count = 0u64;
    recurse(
        plan,
        graph,
        prefix.len(),
        &mut bound,
        &mut buffers.buffers,
        &mut |_| count += 1,
    );
    count
}

/// Enumerates every valid prefix of length `depth` (the values bound by the
/// first `depth` loops, with all restrictions and injectivity applied).
/// These prefixes are the fine-grained tasks of the distributed design
/// (Section IV-E: "the master thread executes the outer loops and packs the
/// values of the outer loops into a task").
pub fn enumerate_prefixes(
    plan: &ExecutionPlan,
    graph: &CsrGraph,
    depth: usize,
) -> Vec<Vec<VertexId>> {
    let n = plan.num_loops();
    assert!(depth >= 1 && depth <= n);
    let mut result = Vec::new();
    let mut bound: Vec<VertexId> = Vec::with_capacity(depth);
    let mut buffers = SearchBuffers::new(n);
    for v in graph.vertices() {
        bound.push(v);
        if depth == 1 {
            result.push(bound.clone());
        } else {
            collect_prefixes(
                plan,
                graph,
                1,
                depth,
                &mut bound,
                &mut buffers.buffers,
                &mut result,
            );
        }
        bound.pop();
    }
    result
}

fn collect_prefixes(
    plan: &ExecutionPlan,
    graph: &CsrGraph,
    depth: usize,
    target: usize,
    bound: &mut Vec<VertexId>,
    buffers: &mut [Vec<VertexId>],
    out: &mut Vec<Vec<VertexId>>,
) {
    let (current_buf, rest) = buffers.split_first_mut().expect("buffer per depth");
    let Some((candidates, start, end)) = candidate_range(plan, graph, depth, bound, current_buf)
    else {
        return;
    };
    for &v in &candidates[start..end] {
        if bound.contains(&v) {
            continue;
        }
        bound.push(v);
        if depth + 1 == target {
            out.push(bound.clone());
        } else {
            collect_prefixes(plan, graph, depth + 1, target, bound, rest, out);
        }
        bound.pop();
    }
}

fn recurse<F: FnMut(&[VertexId])>(
    plan: &ExecutionPlan,
    graph: &CsrGraph,
    depth: usize,
    bound: &mut Vec<VertexId>,
    buffers: &mut [Vec<VertexId>],
    visitor: &mut F,
) {
    let n = plan.num_loops();
    let (current_buf, rest) = buffers.split_first_mut().expect("buffer per depth");
    let Some((candidates, start, end)) = candidate_range(plan, graph, depth, bound, current_buf)
    else {
        return;
    };
    if depth == n - 1 {
        // Innermost loop: every candidate not already bound is an embedding.
        for &v in &candidates[start..end] {
            if bound.contains(&v) {
                continue;
            }
            bound.push(v);
            visitor(bound);
            bound.pop();
        }
        return;
    }
    for &v in &candidates[start..end] {
        if bound.contains(&v) {
            continue;
        }
        bound.push(v);
        recurse(plan, graph, depth + 1, bound, rest, visitor);
        bound.pop();
    }
}

/// Computes the candidate set of loop `depth` given the currently bound
/// prefix, returning the slice together with the index range that survives
/// the restriction bounds. Returns `None` when the range is empty.
///
/// The slice aliases either a CSR adjacency list (single parent) or the
/// scratch buffer (multiple parents).
fn candidate_range<'a>(
    plan: &ExecutionPlan,
    graph: &'a CsrGraph,
    depth: usize,
    bound: &[VertexId],
    scratch: &'a mut Vec<VertexId>,
) -> Option<(&'a [VertexId], usize, usize)> {
    let loop_plan = &plan.loops[depth];
    let candidates: &[VertexId] = match loop_plan.parents.len() {
        0 => {
            // Only the outermost loop may be parentless, and the driver
            // handles it; a parentless inner loop would require scanning the
            // whole vertex set, which phase-1 schedules never produce. Fall
            // back to materialising the full vertex range for generality
            // (needed when executing deliberately inefficient schedules in
            // the Figure 9 experiment).
            scratch.clear();
            scratch.extend(graph.vertices());
            scratch.as_slice()
        }
        1 => graph.neighbors(bound[loop_plan.parents[0]]),
        2 => {
            let a = graph.neighbors(bound[loop_plan.parents[0]]);
            let b = graph.neighbors(bound[loop_plan.parents[1]]);
            vertex_set::intersect_into(a, b, scratch);
            scratch.as_slice()
        }
        _ => {
            let sets: Vec<&[VertexId]> = loop_plan
                .parents
                .iter()
                .map(|&p| graph.neighbors(bound[p]))
                .collect();
            let result = vertex_set::intersect_many(&sets);
            scratch.clear();
            scratch.extend_from_slice(&result);
            scratch.as_slice()
        }
    };

    // Restriction bounds: candidates must lie strictly between `lower` and
    // `upper`.
    let mut lower: Option<VertexId> = None;
    let mut upper: Option<VertexId> = None;
    for b in &loop_plan.bounds {
        match *b {
            LoopBound::LessThanValueAt(pos) => {
                let limit = bound[pos];
                upper = Some(upper.map_or(limit, |u: VertexId| u.min(limit)));
            }
            LoopBound::GreaterThanValueAt(pos) => {
                let limit = bound[pos];
                lower = Some(lower.map_or(limit, |l: VertexId| l.max(limit)));
            }
        }
    }
    let start = match lower {
        Some(l) => candidates.partition_point(|&x| x <= l),
        None => 0,
    };
    let end = match upper {
        Some(u) => candidates.partition_point(|&x| x < u),
        None => candidates.len(),
    };
    if start >= end {
        None
    } else {
        Some((candidates, start, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;
    use crate::schedule::Schedule;
    use graphpi_graph::{builder::from_edges, generators};
    use graphpi_pattern::automorphism::automorphism_count;
    use graphpi_pattern::prefab;
    use graphpi_pattern::restriction::{
        generate_restriction_sets, GenerationOptions, RestrictionSet,
    };

    fn plan_for(
        pattern: graphpi_pattern::Pattern,
        order: Vec<usize>,
        restrictions: RestrictionSet,
    ) -> ExecutionPlan {
        let schedule = Schedule::new(&pattern, order);
        Configuration::new(pattern, schedule, restrictions).compile()
    }

    #[test]
    fn triangle_counting_without_restrictions_overcounts_by_aut() {
        let g = generators::complete(5);
        let triangle = prefab::triangle();
        let plan = plan_for(triangle.clone(), vec![0, 1, 2], RestrictionSet::empty());
        // K5 has C(5,3) = 10 triangles; each is found |Aut| = 6 times.
        assert_eq!(count_embeddings(&plan, &g), 60);

        let sets = generate_restriction_sets(&triangle, GenerationOptions::default());
        let plan = plan_for(triangle, vec![0, 1, 2], sets[0].clone());
        assert_eq!(count_embeddings(&plan, &g), 10);
    }

    #[test]
    fn rectangle_on_known_graph() {
        // Two rectangles sharing an edge: 0-1-2-3-0 and 2-3-4-5-2.
        let g = from_edges(&[(0, 1), (1, 2), (2, 3), (0, 3), (3, 4), (4, 5), (2, 5)]);
        let rect = prefab::rectangle();
        let sets = generate_restriction_sets(&rect, GenerationOptions::default());
        let plan = plan_for(rect, vec![0, 1, 2, 3], sets[0].clone());
        assert_eq!(count_embeddings(&plan, &g), 2);
    }

    #[test]
    fn house_counts_match_across_all_restriction_sets_and_schedules() {
        let g = generators::power_law(150, 5, 21);
        let house = prefab::house();
        let sets = generate_restriction_sets(&house, GenerationOptions::default());
        let schedules = crate::schedule::efficient_schedules(&house);
        let mut counts = std::collections::BTreeSet::new();
        for set in sets.iter().take(3) {
            for schedule in schedules.iter().take(5) {
                let plan =
                    Configuration::new(house.clone(), schedule.clone(), set.clone()).compile();
                counts.insert(count_embeddings(&plan, &g));
            }
        }
        assert_eq!(counts.len(), 1, "all configurations must agree: {counts:?}");
    }

    #[test]
    fn restricted_count_times_aut_equals_unrestricted() {
        let g = generators::erdos_renyi(80, 600, 9);
        for pattern in [prefab::triangle(), prefab::rectangle(), prefab::house()] {
            let aut = automorphism_count(&pattern) as u64;
            let order: Vec<usize> = (0..pattern.num_vertices()).collect();
            let unrestricted = count_embeddings(
                &plan_for(pattern.clone(), order.clone(), RestrictionSet::empty()),
                &g,
            );
            let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
            let restricted = count_embeddings(&plan_for(pattern, order, sets[0].clone()), &g);
            assert_eq!(restricted * aut, unrestricted);
        }
    }

    #[test]
    fn listing_respects_pattern_structure() {
        let g = generators::erdos_renyi(40, 200, 5);
        let house = prefab::house();
        let sets = generate_restriction_sets(&house, GenerationOptions::default());
        let plan = plan_for(house.clone(), vec![0, 1, 2, 3, 4], sets[0].clone());
        let embeddings = list_embeddings(&plan, &g);
        assert_eq!(embeddings.len() as u64, count_embeddings(&plan, &g));
        for emb in &embeddings {
            // Every pattern edge must exist between the mapped data vertices.
            for (u, v) in house.edges() {
                assert!(g.has_edge(emb[u], emb[v]), "missing edge for {emb:?}");
            }
            // Injective mapping.
            let mut distinct = emb.clone();
            distinct.sort_unstable();
            distinct.dedup();
            assert_eq!(distinct.len(), emb.len());
        }
    }

    #[test]
    fn prefix_counting_partitions_total() {
        let g = generators::power_law(200, 5, 33);
        let house = prefab::house();
        let sets = generate_restriction_sets(&house, GenerationOptions::default());
        let plan = plan_for(house, vec![0, 1, 2, 3, 4], sets[0].clone());
        let total = count_embeddings(&plan, &g);
        for depth in 1..=2 {
            let prefixes = enumerate_prefixes(&plan, &g, depth);
            let sum: u64 = prefixes
                .iter()
                .map(|p| count_from_prefix(&plan, &g, p))
                .sum();
            assert_eq!(sum, total, "prefix depth {depth}");
        }
    }

    #[test]
    fn single_vertex_and_edge_patterns() {
        let g = generators::erdos_renyi(30, 100, 1);
        let single = graphpi_pattern::Pattern::empty(1);
        let plan = plan_for(single, vec![0], RestrictionSet::empty());
        assert_eq!(count_embeddings(&plan, &g), 30);

        let edge = graphpi_pattern::Pattern::new(2, &[(0, 1)]);
        let sets = generate_restriction_sets(&edge, GenerationOptions::default());
        let plan = plan_for(edge, vec![0, 1], sets[0].clone());
        assert_eq!(count_embeddings(&plan, &g), 100);
    }

    #[test]
    fn empty_graph_yields_zero() {
        let g = graphpi_graph::GraphBuilder::new().num_vertices(10).build();
        let plan = plan_for(prefab::triangle(), vec![0, 1, 2], RestrictionSet::empty());
        assert_eq!(count_embeddings(&plan, &g), 0);
    }

    #[test]
    fn lower_bound_restrictions_also_work() {
        // Use the reversed restriction id(B) > id(A): candidates for B must
        // be greater than the bound value of A. Counts must still be exact.
        let g = generators::erdos_renyi(60, 300, 8);
        let edge = graphpi_pattern::Pattern::new(2, &[(0, 1)]);
        let reversed = RestrictionSet::from_pairs(&[(1, 0)]);
        let plan = plan_for(edge, vec![0, 1], reversed);
        assert_eq!(count_embeddings(&plan, &g), 300);
    }
}
