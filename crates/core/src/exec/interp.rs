//! Sequential nested-loop execution of a compiled plan.
//!
//! The interpreter walks the loop nest described by an
//! [`crate::config::ExecutionPlan`]: loop `i` binds pattern
//! vertex `plan.loops[i].pattern_vertex` to a data vertex drawn from the
//! intersection of the neighborhoods of its already-bound pattern neighbors,
//! subject to the restriction bounds and to injectivity. Reaching the last
//! loop yields embeddings.
//!
//! This is the executable counterpart of the code GraphPi generates and
//! compiles (Figure 5(b)); [`crate::codegen`] renders the same plan as
//! source text.
//!
//! The matching kernel is **allocation-free**: every candidate set is
//! materialised into a per-depth buffer of a reusable [`SearchBuffers`], the
//! k-way intersection ping-pongs between that buffer and a shared scratch
//! (`vertex_set::intersect_many_into`), and the hub-accelerated paths reuse a
//! shared bitset word buffer. The parallel executor holds one
//! [`SearchBuffers`] per worker and calls [`count_from_prefix_with`] per
//! task, so the steady-state worker loop performs no heap allocation at all.

use crate::config::{ExecutionPlan, LoopBound, MAX_LOOPS};
use crate::exec::sink::{CountSink, MatchSink};
use graphpi_graph::csr::{CsrGraph, VertexId};
use graphpi_graph::hub::HubGraph;
use graphpi_graph::vertex_set;

/// The data a plan executes against: a CSR graph, optionally wrapped with
/// the hub-acceleration structure (degree-descending relabeling + bitset
/// rows for the high-degree core).
///
/// When hubs are present, `graph` **is** the relabeled graph
/// ([`HubGraph::graph`]); embedding counts are invariant under the
/// relabeling, so every counting entry point returns identical results with
/// hubs on or off.
#[derive(Debug, Clone, Copy)]
pub struct ExecCtx<'a> {
    graph: &'a CsrGraph,
    hubs: Option<&'a HubGraph>,
}

impl<'a> ExecCtx<'a> {
    /// Plain execution over a CSR graph.
    pub fn new(graph: &'a CsrGraph) -> Self {
        Self { graph, hubs: None }
    }

    /// Hub-accelerated execution over the relabeled graph.
    pub fn with_hubs(hubs: &'a HubGraph) -> Self {
        Self {
            graph: hubs.graph(),
            hubs: Some(hubs),
        }
    }

    /// The graph being executed against (relabeled when hubs are on).
    #[inline]
    pub fn graph(&self) -> &'a CsrGraph {
        self.graph
    }

    /// The hub structure, if hub acceleration is enabled.
    #[inline]
    pub fn hubs(&self) -> Option<&'a HubGraph> {
        self.hubs
    }
}

/// Reusable scratch for the matching kernel: one candidate buffer per loop
/// depth, a ping-pong buffer for k-way intersections, a bitset word buffer
/// for all-hub intersections, and the bound-vertex stack.
///
/// Create once (per worker, per thread) and reuse across tasks; after the
/// buffers have grown to their steady-state sizes the kernel allocates
/// nothing.
#[derive(Debug, Default)]
pub struct SearchBuffers {
    /// Per-depth candidate materialisation buffers.
    depth_bufs: Vec<Vec<VertexId>>,
    /// Ping-pong scratch for multi-way intersections.
    tmp: Vec<VertexId>,
    /// Bitset scratch for intersections where every parent is a hub.
    words: Vec<u64>,
    /// Bound-vertex stack (prefix + inner-loop bindings).
    stack: Vec<VertexId>,
}

impl SearchBuffers {
    /// Creates buffers for a plan with `depth` loops.
    pub fn new(depth: usize) -> Self {
        Self {
            depth_bufs: vec![Vec::new(); depth],
            tmp: Vec::new(),
            words: Vec::new(),
            stack: Vec::with_capacity(depth),
        }
    }

    fn ensure_depth(&mut self, depth: usize) {
        if self.depth_bufs.len() < depth {
            self.depth_bufs.resize_with(depth, Vec::new);
        }
    }
}

/// Counts every embedding of the plan's pattern in the data graph.
pub fn count_embeddings(plan: &ExecutionPlan, graph: &CsrGraph) -> u64 {
    count_embeddings_in(plan, ExecCtx::new(graph))
}

/// Counts every embedding using hub-accelerated intersections. Returns the
/// same count as [`count_embeddings`] on the original graph.
pub fn count_embeddings_hub(plan: &ExecutionPlan, hubs: &HubGraph) -> u64 {
    count_embeddings_in(plan, ExecCtx::with_hubs(hubs))
}

/// Counts every embedding in an explicit execution context.
pub fn count_embeddings_in(plan: &ExecutionPlan, ctx: ExecCtx<'_>) -> u64 {
    let mut count = 0u64;
    for_each_embedding_in(plan, ctx, |_| count += 1);
    count
}

/// Collects every embedding as a vector of data vertices indexed **by
/// pattern vertex** (i.e. `result[e][p]` is the data vertex that embedding
/// `e` assigns to pattern vertex `p`).
pub fn list_embeddings(plan: &ExecutionPlan, graph: &CsrGraph) -> Vec<Vec<VertexId>> {
    let n = plan.num_loops();
    let mut out = Vec::new();
    for_each_embedding(plan, graph, |bound| {
        let mut by_pattern_vertex = vec![0 as VertexId; n];
        for (i, &v) in bound.iter().enumerate() {
            by_pattern_vertex[plan.loops[i].pattern_vertex] = v;
        }
        out.push(by_pattern_vertex);
    });
    out
}

/// Invokes `visitor` once per embedding with the bound data vertices in
/// **schedule order** (`bound[i]` is the vertex chosen by loop `i`).
pub fn for_each_embedding<F: FnMut(&[VertexId])>(
    plan: &ExecutionPlan,
    graph: &CsrGraph,
    visitor: F,
) {
    for_each_embedding_in(plan, ExecCtx::new(graph), visitor);
}

/// Context-explicit variant of [`for_each_embedding`].
pub fn for_each_embedding_in<F: FnMut(&[VertexId])>(
    plan: &ExecutionPlan,
    ctx: ExecCtx<'_>,
    mut visitor: F,
) {
    let n = plan.num_loops();
    if n == 0 {
        return;
    }
    let mut buffers = SearchBuffers::new(n);
    let SearchBuffers {
        depth_bufs,
        tmp,
        words,
        stack,
    } = &mut buffers;
    for v in ctx.graph.vertices() {
        stack.push(v);
        if n == 1 {
            visitor(stack);
        } else {
            recurse(plan, ctx, 1, stack, depth_bufs, tmp, words, &mut visitor);
        }
        stack.pop();
    }
}

/// Sink-driven whole-graph matching, decomposed exactly like the parallel
/// executors: valid prefixes of `task_depth` loops are enumerated and the
/// subtree under each is matched through
/// [`match_from_prefix_with`] — so a sink that makes per-prefix decisions
/// ([`MatchSink::accept_prefix`], e.g. sampling) sees the **same** prefix
/// stream sequentially as each parallel worker does collectively, and a
/// saturating sink ([`MatchSink::is_full`]) stops exploring further
/// subtrees.
pub fn match_embeddings_in<S: MatchSink>(
    plan: &ExecutionPlan,
    ctx: ExecCtx<'_>,
    task_depth: usize,
    sink: &mut S,
) {
    let n = plan.num_loops();
    if n == 0 {
        return;
    }
    let depth = task_depth.clamp(1, n);
    let mut buffers = SearchBuffers::new(n);
    let mut full = false;
    for_each_prefix(plan, ctx, depth, |prefix| {
        if full {
            return;
        }
        if !match_from_prefix_with(plan, ctx, prefix, &mut buffers, sink) {
            full = true;
        }
    });
}

/// Counts embeddings that extend a fixed prefix of bound vertices (the
/// values chosen by the first `prefix.len()` loops). Used by the parallel
/// and distributed executors, whose tasks are exactly such prefixes.
///
/// Allocates fresh scratch; hot loops should hold a [`SearchBuffers`] and
/// call [`count_from_prefix_with`] instead.
pub fn count_from_prefix(plan: &ExecutionPlan, graph: &CsrGraph, prefix: &[VertexId]) -> u64 {
    let mut buffers = SearchBuffers::new(plan.num_loops());
    count_from_prefix_with(plan, ExecCtx::new(graph), prefix, &mut buffers)
}

/// Allocation-free variant of [`count_from_prefix`]: reuses the caller's
/// [`SearchBuffers`] and supports hub acceleration through the context.
///
/// Implemented as [`match_from_prefix_with`] driving a [`CountSink`] — the
/// sink monomorphises into the same `count += 1` hot loop the pre-sink
/// kernel inlined, so counts (and count throughput) are unchanged.
pub fn count_from_prefix_with(
    plan: &ExecutionPlan,
    ctx: ExecCtx<'_>,
    prefix: &[VertexId],
    buffers: &mut SearchBuffers,
) -> u64 {
    let mut sink = CountSink::new();
    match_from_prefix_with(plan, ctx, prefix, buffers, &mut sink);
    sink.count()
}

/// The mode-generic matching entry point: explores every embedding that
/// extends `prefix` and feeds each to `sink`. Consults
/// [`MatchSink::accept_prefix`] once for the task prefix (a rejected task
/// explores nothing) and stops early once [`MatchSink::is_full`] reports
/// saturation. Returns `false` when the search was cut short by a full
/// sink.
pub fn match_from_prefix_with<S: MatchSink>(
    plan: &ExecutionPlan,
    ctx: ExecCtx<'_>,
    prefix: &[VertexId],
    buffers: &mut SearchBuffers,
    sink: &mut S,
) -> bool {
    let n = plan.num_loops();
    assert!(prefix.len() <= n && !prefix.is_empty());
    if !sink.accept_prefix(prefix) {
        return true;
    }
    if prefix.len() == n {
        sink.on_match(prefix);
        return !sink.is_full();
    }
    buffers.ensure_depth(n);
    let SearchBuffers {
        depth_bufs,
        tmp,
        words,
        stack,
    } = buffers;
    stack.clear();
    stack.extend_from_slice(prefix);
    recurse_sink(
        plan,
        ctx,
        prefix.len(),
        stack,
        depth_bufs,
        tmp,
        words,
        sink,
    )
}

/// Enumerates every valid prefix of length `depth` (the values bound by the
/// first `depth` loops, with all restrictions and injectivity applied).
/// These prefixes are the fine-grained tasks of the distributed design
/// (Section IV-E: "the master thread executes the outer loops and packs the
/// values of the outer loops into a task").
pub fn enumerate_prefixes(
    plan: &ExecutionPlan,
    graph: &CsrGraph,
    depth: usize,
) -> Vec<Vec<VertexId>> {
    let mut result = Vec::new();
    for_each_prefix(plan, ExecCtx::new(graph), depth, |p| {
        result.push(p.to_vec())
    });
    result
}

/// Streaming variant of [`enumerate_prefixes`]: invokes `visitor` once per
/// valid prefix without materialising the task list. This is what the
/// parallel executor's master thread uses to feed workers in batches while
/// enumeration is still running.
pub fn for_each_prefix<F: FnMut(&[VertexId])>(
    plan: &ExecutionPlan,
    ctx: ExecCtx<'_>,
    depth: usize,
    mut visitor: F,
) {
    let n = plan.num_loops();
    assert!(depth >= 1 && depth <= n);
    let mut buffers = SearchBuffers::new(n);
    let SearchBuffers {
        depth_bufs,
        tmp,
        words,
        stack,
    } = &mut buffers;
    for v in ctx.graph.vertices() {
        stack.push(v);
        if depth == 1 {
            visitor(stack);
        } else {
            collect_prefixes(
                plan,
                ctx,
                1,
                depth,
                stack,
                depth_bufs,
                tmp,
                words,
                &mut visitor,
            );
        }
        stack.pop();
    }
}

#[allow(clippy::too_many_arguments)]
fn collect_prefixes<F: FnMut(&[VertexId])>(
    plan: &ExecutionPlan,
    ctx: ExecCtx<'_>,
    depth: usize,
    target: usize,
    bound: &mut Vec<VertexId>,
    buffers: &mut [Vec<VertexId>],
    tmp: &mut Vec<VertexId>,
    words: &mut Vec<u64>,
    visitor: &mut F,
) {
    let (current_buf, rest) = buffers.split_first_mut().expect("buffer per depth");
    let Some((candidates, start, end)) =
        candidate_range(plan, ctx, depth, bound, current_buf, tmp, words)
    else {
        return;
    };
    for &v in &candidates[start..end] {
        if bound.contains(&v) {
            continue;
        }
        bound.push(v);
        if depth + 1 == target {
            visitor(bound);
        } else {
            collect_prefixes(
                plan,
                ctx,
                depth + 1,
                target,
                bound,
                rest,
                tmp,
                words,
                visitor,
            );
        }
        bound.pop();
    }
}

#[allow(clippy::too_many_arguments)]
fn recurse<F: FnMut(&[VertexId])>(
    plan: &ExecutionPlan,
    ctx: ExecCtx<'_>,
    depth: usize,
    bound: &mut Vec<VertexId>,
    buffers: &mut [Vec<VertexId>],
    tmp: &mut Vec<VertexId>,
    words: &mut Vec<u64>,
    visitor: &mut F,
) {
    let n = plan.num_loops();
    let (current_buf, rest) = buffers.split_first_mut().expect("buffer per depth");
    let Some((candidates, start, end)) =
        candidate_range(plan, ctx, depth, bound, current_buf, tmp, words)
    else {
        return;
    };
    if depth == n - 1 {
        // Innermost loop: every candidate not already bound is an embedding.
        for &v in &candidates[start..end] {
            if bound.contains(&v) {
                continue;
            }
            bound.push(v);
            visitor(bound);
            bound.pop();
        }
        return;
    }
    for &v in &candidates[start..end] {
        if bound.contains(&v) {
            continue;
        }
        bound.push(v);
        recurse(plan, ctx, depth + 1, bound, rest, tmp, words, visitor);
        bound.pop();
    }
}

/// The sink-driven twin of [`recurse`]: identical candidate generation and
/// bound handling, but each embedding goes to a [`MatchSink`] and the walk
/// unwinds as soon as the sink is full. Returns `false` on early exit.
///
/// For sinks that never saturate ([`CountSink`], [`super::sink::OrbitSink`])
/// the `is_full` check is a constant `false` after monomorphisation, so the
/// compiled loop matches the closure-based recursion bit for bit.
#[allow(clippy::too_many_arguments)]
fn recurse_sink<S: MatchSink>(
    plan: &ExecutionPlan,
    ctx: ExecCtx<'_>,
    depth: usize,
    bound: &mut Vec<VertexId>,
    buffers: &mut [Vec<VertexId>],
    tmp: &mut Vec<VertexId>,
    words: &mut Vec<u64>,
    sink: &mut S,
) -> bool {
    let n = plan.num_loops();
    let (current_buf, rest) = buffers.split_first_mut().expect("buffer per depth");
    let Some((candidates, start, end)) =
        candidate_range(plan, ctx, depth, bound, current_buf, tmp, words)
    else {
        return true;
    };
    if depth == n - 1 {
        // Innermost loop: every candidate not already bound is an embedding.
        for &v in &candidates[start..end] {
            if bound.contains(&v) {
                continue;
            }
            bound.push(v);
            sink.on_match(bound);
            bound.pop();
            if sink.is_full() {
                return false;
            }
        }
        return true;
    }
    for &v in &candidates[start..end] {
        if bound.contains(&v) {
            continue;
        }
        bound.push(v);
        let keep_going = recurse_sink(plan, ctx, depth + 1, bound, rest, tmp, words, sink);
        bound.pop();
        if !keep_going {
            return false;
        }
    }
    true
}

/// Materialises `∩_{v ∈ verts} N(v)` into `out`, choosing the cheapest
/// available strategy:
///
/// * no hubs among `verts` — smallest-first k-way merge/galloping
///   intersection ([`vertex_set::intersect_many_into`]);
/// * hubs and at least one non-hub — intersect the (small) non-hub lists,
///   then probe each survivor against the hub bitset rows (`O(result × k)`
///   regardless of the hubs' degrees);
/// * every parent a hub — word-AND the bitset rows and extract the set bits.
///
/// Allocation-free: `out`, `tmp` and `words` are caller-owned scratch.
pub(crate) fn intersect_neighborhoods_into(
    ctx: ExecCtx<'_>,
    verts: &[VertexId],
    out: &mut Vec<VertexId>,
    tmp: &mut Vec<VertexId>,
    words: &mut Vec<u64>,
) {
    debug_assert!(!verts.is_empty() && verts.len() <= MAX_LOOPS);
    if let Some(hubs) = ctx.hubs {
        let mut hub_vs = [0 as VertexId; MAX_LOOPS];
        let mut lists: [&[VertexId]; MAX_LOOPS] = [&[]; MAX_LOOPS];
        let (mut nh, mut nl) = (0usize, 0usize);
        for &v in verts {
            if hubs.is_hub(v) {
                hub_vs[nh] = v;
                nh += 1;
            } else {
                lists[nl] = ctx.graph.neighbors(v);
                nl += 1;
            }
        }
        match (nl, nh) {
            (0, _) => {
                hubs.and_rows_into(&hub_vs[..nh], words);
                HubGraph::extract_bits_into(words, out);
            }
            (1, _) => hubs.filter_list_into(&hub_vs[..nh], lists[0], out),
            _ => {
                vertex_set::intersect_many_into(&lists[..nl], out, tmp);
                if nh > 0 {
                    hubs.retain_adjacent_to_all(&hub_vs[..nh], out);
                }
            }
        }
    } else {
        let mut lists: [&[VertexId]; MAX_LOOPS] = [&[]; MAX_LOOPS];
        for (slot, &v) in lists.iter_mut().zip(verts) {
            *slot = ctx.graph.neighbors(v);
        }
        vertex_set::intersect_many_into(&lists[..verts.len()], out, tmp);
    }
}

/// Computes the candidate set of loop `depth` given the currently bound
/// prefix, returning the slice together with the index range that survives
/// the restriction bounds. Returns `None` when the range is empty.
///
/// The slice aliases either a CSR adjacency list (single non-hub parent) or
/// the depth's scratch buffer. Allocation-free for any parent count: the
/// multi-parent branch intersects smallest-first directly into `scratch`
/// via [`vertex_set::intersect_many_into`] (ping-ponging with `tmp`), and
/// the hub paths use bit probes or word-ANDs into `words`.
#[allow(clippy::too_many_arguments)]
fn candidate_range<'a>(
    plan: &ExecutionPlan,
    ctx: ExecCtx<'a>,
    depth: usize,
    bound: &[VertexId],
    scratch: &'a mut Vec<VertexId>,
    tmp: &mut Vec<VertexId>,
    words: &mut Vec<u64>,
) -> Option<(&'a [VertexId], usize, usize)> {
    let loop_plan = &plan.loops[depth];
    let candidates: &[VertexId] = match loop_plan.parents.len() {
        0 => {
            // Only the outermost loop may be parentless, and the driver
            // handles it; a parentless inner loop would require scanning the
            // whole vertex set, which phase-1 schedules never produce. Fall
            // back to materialising the full vertex range for generality
            // (needed when executing deliberately inefficient schedules in
            // the Figure 9 experiment).
            scratch.clear();
            scratch.extend(ctx.graph.vertices());
            scratch.as_slice()
        }
        1 => ctx.graph.neighbors(bound[loop_plan.parents[0]]),
        _ => {
            let mut verts = [0 as VertexId; MAX_LOOPS];
            for (slot, &p) in verts.iter_mut().zip(&loop_plan.parents) {
                *slot = bound[p];
            }
            intersect_neighborhoods_into(
                ctx,
                &verts[..loop_plan.parents.len()],
                scratch,
                tmp,
                words,
            );
            scratch.as_slice()
        }
    };

    // Restriction bounds: candidates must lie strictly between `lower` and
    // `upper`.
    let mut lower: Option<VertexId> = None;
    let mut upper: Option<VertexId> = None;
    for b in &loop_plan.bounds {
        match *b {
            LoopBound::LessThanValueAt(pos) => {
                let limit = bound[pos];
                upper = Some(upper.map_or(limit, |u: VertexId| u.min(limit)));
            }
            LoopBound::GreaterThanValueAt(pos) => {
                let limit = bound[pos];
                lower = Some(lower.map_or(limit, |l: VertexId| l.max(limit)));
            }
        }
    }
    let start = match lower {
        Some(l) => candidates.partition_point(|&x| x <= l),
        None => 0,
    };
    let end = match upper {
        Some(u) => candidates.partition_point(|&x| x < u),
        None => candidates.len(),
    };
    if start >= end {
        None
    } else {
        Some((candidates, start, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;
    use crate::schedule::Schedule;
    use graphpi_graph::hub::{HubGraph, HubOptions};
    use graphpi_graph::{builder::from_edges, generators};
    use graphpi_pattern::automorphism::automorphism_count;
    use graphpi_pattern::prefab;
    use graphpi_pattern::restriction::{
        generate_restriction_sets, GenerationOptions, RestrictionSet,
    };

    fn plan_for(
        pattern: graphpi_pattern::Pattern,
        order: Vec<usize>,
        restrictions: RestrictionSet,
    ) -> ExecutionPlan {
        let schedule = Schedule::new(&pattern, order);
        Configuration::new(pattern, schedule, restrictions).compile()
    }

    #[test]
    fn triangle_counting_without_restrictions_overcounts_by_aut() {
        let g = generators::complete(5);
        let triangle = prefab::triangle();
        let plan = plan_for(triangle.clone(), vec![0, 1, 2], RestrictionSet::empty());
        // K5 has C(5,3) = 10 triangles; each is found |Aut| = 6 times.
        assert_eq!(count_embeddings(&plan, &g), 60);

        let sets = generate_restriction_sets(&triangle, GenerationOptions::default());
        let plan = plan_for(triangle, vec![0, 1, 2], sets[0].clone());
        assert_eq!(count_embeddings(&plan, &g), 10);
    }

    #[test]
    fn rectangle_on_known_graph() {
        // Two rectangles sharing an edge: 0-1-2-3-0 and 2-3-4-5-2.
        let g = from_edges(&[(0, 1), (1, 2), (2, 3), (0, 3), (3, 4), (4, 5), (2, 5)]);
        let rect = prefab::rectangle();
        let sets = generate_restriction_sets(&rect, GenerationOptions::default());
        let plan = plan_for(rect, vec![0, 1, 2, 3], sets[0].clone());
        assert_eq!(count_embeddings(&plan, &g), 2);
    }

    #[test]
    fn house_counts_match_across_all_restriction_sets_and_schedules() {
        let g = generators::power_law(150, 5, 21);
        let house = prefab::house();
        let sets = generate_restriction_sets(&house, GenerationOptions::default());
        let schedules = crate::schedule::efficient_schedules(&house);
        let mut counts = std::collections::BTreeSet::new();
        for set in sets.iter().take(3) {
            for schedule in schedules.iter().take(5) {
                let plan =
                    Configuration::new(house.clone(), schedule.clone(), set.clone()).compile();
                counts.insert(count_embeddings(&plan, &g));
            }
        }
        assert_eq!(counts.len(), 1, "all configurations must agree: {counts:?}");
    }

    #[test]
    fn restricted_count_times_aut_equals_unrestricted() {
        let g = generators::erdos_renyi(80, 600, 9);
        for pattern in [prefab::triangle(), prefab::rectangle(), prefab::house()] {
            let aut = automorphism_count(&pattern) as u64;
            let order: Vec<usize> = (0..pattern.num_vertices()).collect();
            let unrestricted = count_embeddings(
                &plan_for(pattern.clone(), order.clone(), RestrictionSet::empty()),
                &g,
            );
            let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
            let restricted = count_embeddings(&plan_for(pattern, order, sets[0].clone()), &g);
            assert_eq!(restricted * aut, unrestricted);
        }
    }

    #[test]
    fn listing_respects_pattern_structure() {
        let g = generators::erdos_renyi(40, 200, 5);
        let house = prefab::house();
        let sets = generate_restriction_sets(&house, GenerationOptions::default());
        let plan = plan_for(house.clone(), vec![0, 1, 2, 3, 4], sets[0].clone());
        let embeddings = list_embeddings(&plan, &g);
        assert_eq!(embeddings.len() as u64, count_embeddings(&plan, &g));
        for emb in &embeddings {
            // Every pattern edge must exist between the mapped data vertices.
            for (u, v) in house.edges() {
                assert!(g.has_edge(emb[u], emb[v]), "missing edge for {emb:?}");
            }
            // Injective mapping.
            let mut distinct = emb.clone();
            distinct.sort_unstable();
            distinct.dedup();
            assert_eq!(distinct.len(), emb.len());
        }
    }

    #[test]
    fn prefix_counting_partitions_total() {
        let g = generators::power_law(200, 5, 33);
        let house = prefab::house();
        let sets = generate_restriction_sets(&house, GenerationOptions::default());
        let plan = plan_for(house, vec![0, 1, 2, 3, 4], sets[0].clone());
        let total = count_embeddings(&plan, &g);
        for depth in 1..=2 {
            let prefixes = enumerate_prefixes(&plan, &g, depth);
            let sum: u64 = prefixes
                .iter()
                .map(|p| count_from_prefix(&plan, &g, p))
                .sum();
            assert_eq!(sum, total, "prefix depth {depth}");
        }
    }

    #[test]
    fn reused_buffers_match_fresh_buffers() {
        let g = generators::power_law(150, 5, 7);
        let house = prefab::house();
        let sets = generate_restriction_sets(&house, GenerationOptions::default());
        let plan = plan_for(house, vec![0, 1, 2, 3, 4], sets[0].clone());
        let prefixes = enumerate_prefixes(&plan, &g, 2);
        let ctx = ExecCtx::new(&g);
        let mut buffers = SearchBuffers::new(plan.num_loops());
        for p in prefixes.iter().take(50) {
            assert_eq!(
                count_from_prefix_with(&plan, ctx, p, &mut buffers),
                count_from_prefix(&plan, &g, p),
            );
        }
    }

    #[test]
    fn streaming_prefixes_match_materialised() {
        let g = generators::power_law(120, 5, 17);
        let house = prefab::house();
        let sets = generate_restriction_sets(&house, GenerationOptions::default());
        let plan = plan_for(house, vec![0, 1, 2, 3, 4], sets[0].clone());
        for depth in 1..=3 {
            let materialised = enumerate_prefixes(&plan, &g, depth);
            let mut streamed = Vec::new();
            for_each_prefix(&plan, ExecCtx::new(&g), depth, |p| {
                streamed.push(p.to_vec())
            });
            assert_eq!(streamed, materialised, "depth {depth}");
        }
    }

    #[test]
    fn hub_context_counts_match_plain() {
        let g = generators::power_law(180, 5, 99);
        let hubs = HubGraph::build(
            &g,
            HubOptions {
                max_hubs: 32,
                min_degree: 4,
            },
        );
        for (name, pattern) in prefab::evaluation_patterns() {
            let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
            let schedules = crate::schedule::efficient_schedules(&pattern);
            let plan = Configuration::new(pattern, schedules[0].clone(), sets[0].clone()).compile();
            assert_eq!(
                count_embeddings_hub(&plan, &hubs),
                count_embeddings(&plan, &g),
                "{name}"
            );
        }
    }

    #[test]
    fn single_vertex_and_edge_patterns() {
        let g = generators::erdos_renyi(30, 100, 1);
        let single = graphpi_pattern::Pattern::empty(1);
        let plan = plan_for(single, vec![0], RestrictionSet::empty());
        assert_eq!(count_embeddings(&plan, &g), 30);

        let edge = graphpi_pattern::Pattern::new(2, &[(0, 1)]);
        let sets = generate_restriction_sets(&edge, GenerationOptions::default());
        let plan = plan_for(edge, vec![0, 1], sets[0].clone());
        assert_eq!(count_embeddings(&plan, &g), 100);
    }

    #[test]
    fn empty_graph_yields_zero() {
        let g = graphpi_graph::GraphBuilder::new().num_vertices(10).build();
        let plan = plan_for(prefab::triangle(), vec![0, 1, 2], RestrictionSet::empty());
        assert_eq!(count_embeddings(&plan, &g), 0);
    }

    #[test]
    fn embed_sink_matches_listing() {
        use crate::exec::sink::EmbedSink;
        let g = generators::erdos_renyi(50, 260, 6);
        let house = prefab::house();
        let sets = generate_restriction_sets(&house, GenerationOptions::default());
        let plan = plan_for(house, vec![0, 1, 2, 3, 4], sets[0].clone());
        let total = count_embeddings(&plan, &g);
        let mut sink = EmbedSink::new(plan.num_loops(), u64::MAX);
        match_embeddings_in(&plan, ExecCtx::new(&g), 2, &mut sink);
        assert_eq!(sink.len(), total);
        // A limit stops the search early with exactly `limit` embeddings.
        let limit = (total / 2).max(1);
        let mut sink = EmbedSink::new(plan.num_loops(), limit);
        match_embeddings_in(&plan, ExecCtx::new(&g), 2, &mut sink);
        assert_eq!(sink.len(), limit.min(total));
    }

    #[test]
    fn orbit_sink_sums_to_pattern_size_times_count() {
        use crate::exec::sink::OrbitSink;
        let g = generators::power_law(120, 5, 8);
        let house = prefab::house();
        let sets = generate_restriction_sets(&house, GenerationOptions::default());
        let plan = plan_for(house, vec![0, 1, 2, 3, 4], sets[0].clone());
        let total = count_embeddings(&plan, &g);
        let mut sink = OrbitSink::new(g.num_vertices());
        match_embeddings_in(&plan, ExecCtx::new(&g), 2, &mut sink);
        let sum: u64 = sink.counts().iter().sum();
        assert_eq!(sum, 5 * total);
    }

    #[test]
    fn sample_sink_at_rate_one_is_exact() {
        use crate::exec::sink::SampleSink;
        let g = generators::power_law(120, 5, 19);
        let house = prefab::house();
        let sets = generate_restriction_sets(&house, GenerationOptions::default());
        let plan = plan_for(house, vec![0, 1, 2, 3, 4], sets[0].clone());
        let total = count_embeddings(&plan, &g);
        let mut sink = SampleSink::new(99, 1.0);
        match_embeddings_in(&plan, ExecCtx::new(&g), 2, &mut sink);
        let est = sink.finish().estimate(1.0);
        assert_eq!(est.estimate, total as f64);
        assert_eq!(est.stderr, 0.0);
    }

    #[test]
    fn lower_bound_restrictions_also_work() {
        // Use the reversed restriction id(B) > id(A): candidates for B must
        // be greater than the bound value of A. Counts must still be exact.
        let g = generators::erdos_renyi(60, 300, 8);
        let edge = graphpi_pattern::Pattern::new(2, &[(0, 1)]);
        let reversed = RestrictionSet::from_pairs(&[(1, 0)]);
        let plan = plan_for(edge, vec![0, 1], reversed);
        assert_eq!(count_embeddings(&plan, &g), 300);
    }
}
