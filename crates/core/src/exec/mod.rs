//! Execution engines for compiled plans.
//!
//! * [`interp`] — the sequential nested-loop interpreter (the in-memory
//!   equivalent of the paper's generated C++ code).
//! * [`iep`] — embedding counting with the Inclusion-Exclusion Principle
//!   over the innermost independent loops (Section IV-D).
//! * [`parallel`] — multi-threaded execution with fine-grained prefix tasks
//!   and work stealing (the single-node half of Section IV-E).
//! * [`pool`] — a persistent work-stealing worker pool that runs the same
//!   task protocol as [`parallel`] but keeps workers (and their scratch)
//!   alive across jobs: the warm serving path behind
//!   [`crate::engine::Session`].
//! * [`cluster`] — a simulated multi-node cluster reproducing the paper's
//!   distributed task-partitioning and work-stealing design for the
//!   scalability experiments.
//! * [`sink`] — the [`sink::MatchSink`] abstraction that turns the matcher
//!   into a pipeline: counting, enumeration, per-vertex (orbit) counts and
//!   sampled approximate counting all share the same kernels.

pub mod cluster;
pub mod iep;
pub mod interp;
pub mod parallel;
pub mod pool;
pub mod sink;
