//! Simulated multi-node distributed execution (Section IV-E).
//!
//! The paper runs GraphPi on up to 1,024 nodes of Tianhe-2A with an
//! OpenMP/MPI hybrid design: the data graph is replicated on every node, a
//! master partitions the outer loops into fine-grained tasks, every node
//! keeps a task queue, and a communication thread steals tasks from other
//! nodes when its own queue runs low.
//!
//! This reproduction has one machine, so the *distributed* part is
//! reproduced as a discrete-event simulation driven by **measured** task
//! costs: every task (outer-loop prefix) is executed once for real (in
//! parallel, to keep wall-clock reasonable) and its execution time recorded;
//! the scheduler then replays those durations on a simulated cluster of
//! `num_nodes × threads_per_node` workers with per-node queues and
//! inter-node work stealing. The simulated makespan is what the scalability
//! experiment (Figure 12) reports. The algorithmic content — fine-grained
//! task partitioning, per-node queues, steal-when-low — is identical to the
//! paper's; only the transport (MPI) is replaced by the simulator.

use crate::config::ExecutionPlan;
use crate::exec::{interp, parallel};
use graphpi_graph::csr::{CsrGraph, VertexId};
use std::sync::Mutex;
use std::time::Instant;

/// Configuration of the simulated cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterOptions {
    /// Number of simulated nodes.
    pub num_nodes: usize,
    /// Worker threads per simulated node (24 in the paper's nodes).
    pub threads_per_node: usize,
    /// Depth of the outer-loop prefix packed into each task.
    pub prefix_depth: Option<usize>,
    /// Number of real threads used to measure task costs (0 = all cores).
    pub measurement_threads: usize,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        Self {
            num_nodes: 4,
            threads_per_node: 24,
            prefix_depth: None,
            measurement_threads: 0,
        }
    }
}

/// Outcome of a simulated distributed run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Total number of embeddings found (exact, not simulated).
    pub embeddings: u64,
    /// Number of tasks generated from the outer loops.
    pub num_tasks: usize,
    /// Sum of all task costs in seconds (i.e. ideal single-worker time).
    pub total_work_seconds: f64,
    /// Simulated makespan in seconds for the requested cluster size.
    pub makespan_seconds: f64,
    /// Per-node busy time in seconds.
    pub node_busy_seconds: Vec<f64>,
    /// Number of tasks each node executed.
    pub node_task_counts: Vec<usize>,
    /// Number of tasks that were stolen from another node's queue.
    pub steals: usize,
    /// Total simulated workers (`num_nodes * threads_per_node`).
    pub total_workers: usize,
}

impl ClusterReport {
    /// Parallel efficiency: ideal time over (makespan × total workers).
    pub fn efficiency(&self) -> f64 {
        let workers = self.total_workers.max(1) as f64;
        if self.makespan_seconds <= 0.0 {
            1.0
        } else {
            self.total_work_seconds / (self.makespan_seconds * workers)
        }
    }

    /// Load imbalance: max node busy time over mean node busy time.
    pub fn imbalance(&self) -> f64 {
        let mean: f64 =
            self.node_busy_seconds.iter().sum::<f64>() / self.node_busy_seconds.len().max(1) as f64;
        if mean <= 0.0 {
            1.0
        } else {
            self.node_busy_seconds
                .iter()
                .copied()
                .fold(0.0f64, f64::max)
                / mean
        }
    }
}

/// A measured task: the prefix it represents, its embedding count and its
/// measured sequential execution time.
#[derive(Debug, Clone)]
pub struct MeasuredTask {
    /// The outer-loop prefix.
    pub prefix: Vec<VertexId>,
    /// Embeddings contributed by this task.
    pub count: u64,
    /// Measured execution time in seconds.
    pub seconds: f64,
}

/// Executes every task once (in parallel across real threads) and records
/// its cost. The measurement is shared by all simulated cluster sizes so
/// that a whole scaling curve uses one consistent set of task durations.
pub fn measure_tasks(
    plan: &ExecutionPlan,
    graph: &CsrGraph,
    prefix_depth: Option<usize>,
    measurement_threads: usize,
) -> Vec<MeasuredTask> {
    let depth = prefix_depth.unwrap_or_else(|| parallel::default_prefix_depth(plan));
    let depth = depth.clamp(1, plan.num_loops());
    let prefixes = interp::enumerate_prefixes(plan, graph, depth);
    let threads = if measurement_threads > 0 {
        measurement_threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };

    let results: Mutex<Vec<MeasuredTask>> = Mutex::new(Vec::with_capacity(prefixes.len()));
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= prefixes.len() {
                    break;
                }
                let prefix = &prefixes[idx];
                let start = Instant::now();
                let count = if depth == plan.num_loops() {
                    1
                } else {
                    interp::count_from_prefix(plan, graph, prefix)
                };
                let seconds = start.elapsed().as_secs_f64();
                results
                    .lock()
                    .expect("results lock poisoned")
                    .push(MeasuredTask {
                        prefix: prefix.clone(),
                        count,
                        seconds,
                    });
            });
        }
    });
    results.into_inner().expect("results lock poisoned")
}

/// Simulates the distributed execution of a set of measured tasks on a
/// cluster, reproducing the paper's per-node queues with work stealing.
pub fn simulate_schedule(tasks: &[MeasuredTask], options: &ClusterOptions) -> ClusterReport {
    let num_nodes = options.num_nodes.max(1);
    let threads_per_node = options.threads_per_node.max(1);

    // Round-robin initial task distribution over the node queues (the
    // master hands tasks out in outer-loop order).
    let mut queues: Vec<std::collections::VecDeque<usize>> =
        vec![std::collections::VecDeque::new(); num_nodes];
    for (i, _) in tasks.iter().enumerate() {
        queues[i % num_nodes].push_back(i);
    }

    // Discrete-event simulation: every worker is identified by (node, slot)
    // and becomes free at a certain simulated time. A flat vector scan is
    // plenty — the number of workers is small (nodes × threads).
    let mut worker_free_at: Vec<Vec<f64>> = vec![vec![0.0; threads_per_node]; num_nodes];
    let mut node_busy = vec![0.0f64; num_nodes];
    let mut node_tasks = vec![0usize; num_nodes];
    let mut steals = 0usize;
    let mut makespan = 0.0f64;

    // Repeatedly give the earliest-free worker its next task.
    loop {
        // Find the earliest free worker.
        let (mut best_node, mut best_slot) = (0usize, 0usize);
        let mut best_time = f64::INFINITY;
        for (node, slots) in worker_free_at.iter().enumerate() {
            for (slot, &free_at) in slots.iter().enumerate() {
                if free_at < best_time {
                    best_time = free_at;
                    best_node = node;
                    best_slot = slot;
                }
            }
        }
        // Pick a task: own queue first, otherwise steal from the longest
        // remote queue (the paper steals when the local queue runs low; with
        // a task granularity of one this degenerates to steal-when-empty).
        let task_idx = if let Some(idx) = queues[best_node].pop_front() {
            Some(idx)
        } else {
            let victim = (0..num_nodes)
                .filter(|&n| n != best_node && !queues[n].is_empty())
                .max_by_key(|&n| queues[n].len());
            match victim {
                Some(v) => {
                    steals += 1;
                    queues[v].pop_back()
                }
                None => None,
            }
        };
        let Some(task_idx) = task_idx else {
            break; // every queue is empty
        };
        let duration = tasks[task_idx].seconds;
        let finish = best_time + duration;
        worker_free_at[best_node][best_slot] = finish;
        node_busy[best_node] += duration;
        node_tasks[best_node] += 1;
        makespan = makespan.max(finish);
    }

    ClusterReport {
        embeddings: tasks.iter().map(|t| t.count).sum(),
        num_tasks: tasks.len(),
        total_work_seconds: tasks.iter().map(|t| t.seconds).sum(),
        makespan_seconds: makespan,
        node_busy_seconds: node_busy,
        node_task_counts: node_tasks,
        steals,
        total_workers: num_nodes * threads_per_node,
    }
}

/// Measures the tasks once and returns the full report for one cluster size.
pub fn run_cluster(
    plan: &ExecutionPlan,
    graph: &CsrGraph,
    options: ClusterOptions,
) -> ClusterReport {
    let tasks = measure_tasks(
        plan,
        graph,
        options.prefix_depth,
        options.measurement_threads,
    );
    simulate_schedule(&tasks, &options)
}

/// Produces a strong-scaling curve: one simulated makespan per node count,
/// all based on a single task measurement pass (Figure 12).
pub fn strong_scaling(
    plan: &ExecutionPlan,
    graph: &CsrGraph,
    node_counts: &[usize],
    threads_per_node: usize,
    prefix_depth: Option<usize>,
) -> Vec<(usize, ClusterReport)> {
    let tasks = measure_tasks(plan, graph, prefix_depth, 0);
    node_counts
        .iter()
        .map(|&nodes| {
            let options = ClusterOptions {
                num_nodes: nodes,
                threads_per_node,
                prefix_depth,
                measurement_threads: 0,
            };
            (nodes, simulate_schedule(&tasks, &options))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;
    use crate::schedule::efficient_schedules;
    use graphpi_graph::generators;
    use graphpi_pattern::prefab;
    use graphpi_pattern::restriction::{generate_restriction_sets, GenerationOptions};

    fn plan_for(pattern: graphpi_pattern::Pattern) -> ExecutionPlan {
        let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
        let schedules = efficient_schedules(&pattern);
        Configuration::new(pattern, schedules[0].clone(), sets[0].clone()).compile()
    }

    #[test]
    fn cluster_count_is_exact() {
        let g = generators::power_law(250, 5, 3);
        let plan = plan_for(prefab::house());
        let expected = interp::count_embeddings(&plan, &g);
        let report = run_cluster(
            &plan,
            &g,
            ClusterOptions {
                num_nodes: 3,
                threads_per_node: 2,
                ..Default::default()
            },
        );
        assert_eq!(report.embeddings, expected);
        assert!(report.num_tasks > 0);
        assert!(report.makespan_seconds >= 0.0);
        assert_eq!(
            report.node_task_counts.iter().sum::<usize>(),
            report.num_tasks
        );
    }

    #[test]
    fn more_nodes_never_slow_down_the_simulation() {
        let g = generators::power_law(300, 6, 9);
        let plan = plan_for(prefab::triangle());
        let curve = strong_scaling(&plan, &g, &[1, 2, 4, 8], 2, None);
        assert_eq!(curve.len(), 4);
        for w in curve.windows(2) {
            assert!(
                w[1].1.makespan_seconds <= w[0].1.makespan_seconds * 1.05,
                "scaling must not regress: {} -> {}",
                w[0].1.makespan_seconds,
                w[1].1.makespan_seconds
            );
        }
        // All cluster sizes count the same embeddings.
        let counts: std::collections::BTreeSet<u64> =
            curve.iter().map(|(_, r)| r.embeddings).collect();
        assert_eq!(counts.len(), 1);
    }

    #[test]
    fn report_metrics_are_sane() {
        let tasks: Vec<MeasuredTask> = (0..100)
            .map(|i| MeasuredTask {
                prefix: vec![i as u32],
                count: 1,
                seconds: 0.001 * ((i % 7) + 1) as f64,
            })
            .collect();
        let report = simulate_schedule(
            &tasks,
            &ClusterOptions {
                num_nodes: 4,
                threads_per_node: 2,
                prefix_depth: None,
                measurement_threads: 1,
            },
        );
        assert_eq!(report.embeddings, 100);
        assert!(report.efficiency() > 0.0 && report.efficiency() <= 1.0 + 1e-9);
        assert!(report.imbalance() >= 1.0 - 1e-9);
        let total: f64 = tasks.iter().map(|t| t.seconds).sum();
        assert!((report.total_work_seconds - total).abs() < 1e-12);
        // Makespan cannot beat perfect scaling.
        assert!(report.makespan_seconds * 8.0 >= total - 1e-9);
    }

    #[test]
    fn single_node_single_thread_equals_total_work() {
        let tasks: Vec<MeasuredTask> = (0..10)
            .map(|i| MeasuredTask {
                prefix: vec![i as u32],
                count: 0,
                seconds: 0.5,
            })
            .collect();
        let report = simulate_schedule(
            &tasks,
            &ClusterOptions {
                num_nodes: 1,
                threads_per_node: 1,
                prefix_depth: None,
                measurement_threads: 1,
            },
        );
        assert!((report.makespan_seconds - 5.0).abs() < 1e-9);
        assert_eq!(report.steals, 0);
    }

    #[test]
    fn work_stealing_kicks_in_for_skewed_queues() {
        // One giant task followed by many small ones lands on node 0's
        // queue first; other nodes must steal to stay busy.
        let mut tasks = vec![MeasuredTask {
            prefix: vec![0],
            count: 0,
            seconds: 1.0,
        }];
        for i in 1..40 {
            tasks.push(MeasuredTask {
                prefix: vec![i as u32],
                count: 0,
                seconds: 0.01,
            });
        }
        let report = simulate_schedule(
            &tasks,
            &ClusterOptions {
                num_nodes: 4,
                threads_per_node: 1,
                prefix_depth: None,
                measurement_threads: 1,
            },
        );
        assert!(report.steals > 0);
        // The makespan is dominated by the giant task, not by 40 tasks in a
        // row.
        assert!(report.makespan_seconds < 1.2);
    }
}
