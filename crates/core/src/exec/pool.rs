//! A persistent, **multi-tenant** work-stealing worker pool: the warm
//! serving path.
//!
//! [`super::parallel::count_parallel`] spawns and joins a fresh
//! `std::thread::scope` per call. That is the right shape for one-shot batch
//! counting, but in a long-lived service handling many queries the fixed
//! costs dominate at fine task granularity: thread spawn/join is on the
//! order of a millisecond, and every spawn re-allocates the per-worker
//! search scratch. [`WorkerPool`] removes both, and (unlike its first
//! incarnation, which serialized every job on a submit lock) runs **several
//! jobs concurrently**:
//!
//! * **Workers are spawned once** and live as long as the pool, keeping
//!   their Chase–Lev deque, [`SearchBuffers`] and [`IepScratch`] alive
//!   across jobs, so the warm path performs zero thread spawns and zero
//!   steady-state allocation.
//! * **Jobs occupy slots.** The pool owns a fixed table of
//!   [`max_in_flight`](WorkerPool::max_in_flight) job slots. Each slot has
//!   its **own injector lane**, and every queued task is **tagged** with its
//!   slot index, so one worker can drain tasks from several active jobs
//!   without ever mixing their counts: the per-task kernel
//!   (`parallel::count_one_task`, shared with the scoped executor — which
//!   is what keeps pooled counts bit-identical to scoped counts) adds into
//!   the owning slot's total.
//! * **Completion is accounting, not thread handshakes.** Each slot counts
//!   its published-but-unfinished tasks (`pending`); a job is complete when
//!   its producer has finished streaming and `pending` returns to zero.
//!   Workers never "join" a job, so a worker that sleeps through a small
//!   job costs it nothing.
//! * **Backpressure**: submitting more than `max_in_flight` concurrent jobs
//!   blocks the extra submitters until a slot frees up, bounding queue
//!   memory and scheduling overhead instead of accepting unbounded fan-in.
//! * **Panic isolation per job.** Workers run every task under
//!   `catch_unwind`: a poisoned plan marks *its own* slot panicked (the
//!   submitter re-raises after the job completes, mirroring the scoped
//!   executor's propagation through `thread::scope`) while tasks of
//!   concurrent jobs keep executing normally and the worker thread itself
//!   survives for the next job.
//!
//! Two properties tune the pool for *small* queries, where a naive pool
//! would drown the matching work in handshake overhead:
//!
//! * **Lazy wakeups** — posting a job wakes nobody by itself; the submitter
//!   issues one `notify_one` per pushed batch *once more than a full batch
//!   of backlog is sitting unclaimed in its lane*, so a query the submitter
//!   can chew alone pays zero context switches while a large query's
//!   backlog ramps up the pool batch by batch. Idle workers poll with a
//!   short [`Parker`] timeout for a few milliseconds, then park on the
//!   wakeup condvar until backlog reappears.
//! * **Caller-runs master helping** — after streaming, the submitting
//!   thread drains its own job's lane itself (with the slot's persistent
//!   scratch). Tiny jobs often complete entirely on the caller; job
//!   completion waits only for tasks some worker actually picked up.
//!
//! # Safety model
//!
//! A slot stores type-erased pointers to the submitter's stack frame
//! (plan/graph/hub index). Their validity is guaranteed by the accounting
//! protocol: a worker only dereferences them while it holds a popped,
//! not-yet-accounted task of that job, `pending` is incremented before a
//! task is published and decremented only after the worker is done touching
//! the job, and the submitter does not return (or unwind, see `JobGuard`)
//! past the pointees until `pending` reaches zero with streaming finished.
//! A slot cannot be reused for a new job before that point, so a task's tag
//! always resolves to the job that created it. The happens-before edges
//! come from the injector (mutex-backed in the vendored `crossbeam`), the
//! Chase–Lev release/acquire pair on sibling steals, and the acquire/release
//! discipline on `pending`.

use crate::config::{ExecutionPlan, MAX_LOOPS};
use crate::exec::iep::IepScratch;
use crate::exec::interp::{ExecCtx, SearchBuffers};
use crate::exec::parallel::{self, CountMode, ExecPath, ParallelOptions, PrefixTask};
use crate::exec::sink::ModeShared;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use crossbeam::sync::{Parker, Unparker};
use graphpi_graph::csr::CsrGraph;
use graphpi_graph::hub::{HubGraph, HubOptions};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long an idle worker naps before re-checking the job lanes and
/// sibling deques. Short enough that steal latency stays invisible next to
/// task runtimes, long enough to release the core on an oversubscribed
/// machine.
const IDLE_PARK: Duration = Duration::from_micros(50);

/// Consecutive empty-handed naps before a worker stops polling and parks on
/// the wakeup condvar (≈3 ms of patience at [`IDLE_PARK`]): bounds idle CPU
/// between jobs without adding wakeup latency during one.
const DEEP_IDLE_ROUNDS: u32 = 64;

/// A queued unit of work: a prefix task tagged with the slot index of the
/// job it belongs to. Tags are what let one worker serve several concurrent
/// jobs without mixing their counts.
#[derive(Clone, Copy)]
struct TaggedTask {
    slot: u32,
    task: PrefixTask,
}

/// One job slot: a lane of the multi-tenant scheduler, owned by exactly one
/// submitter at a time (enforced by the free-list in [`State`]).
///
/// The pointer fields are type-erased references into the owning
/// submitter's stack; see the module-level safety model for why reading
/// them while holding an unaccounted task of this slot is sound. They are
/// atomics only to give the slot a safe `Sync` story — every access is
/// `Relaxed`, ordered by the queue transfer that delivered the task.
struct JobSlot {
    plan: AtomicPtr<ExecutionPlan>,
    graph: AtomicPtr<CsrGraph>,
    /// Null when executing without hub acceleration.
    hubs: AtomicPtr<HubGraph>,
    /// Effective counting mode (`true` = one IEP term per task).
    iep_mode: AtomicBool,
    /// Mode-generic job state: null for count jobs (the unchanged hot
    /// path); otherwise a pointer to the submitter's [`ModeShared`]
    /// (enumeration page buffer / orbit counters / sample accumulator),
    /// valid under exactly the same accounting protocol as `plan`/`graph`.
    mode: AtomicPtr<ModeShared>,
    /// Scheduling priority of the current job: `true` for interactive
    /// counts, `false` for long mode jobs (paged enumeration, orbit
    /// profiles), which workers only pull from once every high-priority
    /// lane is dry — the 2-level priority that keeps a huge enumeration
    /// from starving small counts.
    high_priority: AtomicBool,
    /// This job's task lane. Pool-owned (not on the submitter's stack), so
    /// workers may probe any slot's lane at any time; a free slot's lane is
    /// simply empty.
    injector: Injector<TaggedTask>,
    /// Tasks published but not yet fully processed. Incremented by the
    /// submitter *before* publishing, decremented by whoever finishes (or
    /// discards) a task. `producer_done && pending == 0` is job completion.
    pending: AtomicU64,
    /// No more tasks will be published to this job.
    producer_done: AtomicBool,
    /// Raw embedding total (pre-IEP-correction) of the current job.
    total: AtomicU64,
    /// A task of this job panicked; the submitter re-raises on completion.
    /// Concurrent jobs are unaffected.
    panicked: AtomicBool,
    /// Completion handshake: the submitter waits here for `pending == 0`;
    /// the worker that retires the last task notifies.
    done_lock: Mutex<()>,
    done_cv: Condvar,
    /// The persistent master-side scratch of this lane, used by the
    /// slot-owning submitter for caller-runs helping: repeated queries
    /// allocate nothing, same as the workers.
    scratch: Mutex<MasterScratch>,
}

impl JobSlot {
    fn new() -> Self {
        Self {
            plan: AtomicPtr::new(std::ptr::null_mut()),
            graph: AtomicPtr::new(std::ptr::null_mut()),
            hubs: AtomicPtr::new(std::ptr::null_mut()),
            iep_mode: AtomicBool::new(false),
            mode: AtomicPtr::new(std::ptr::null_mut()),
            high_priority: AtomicBool::new(true),
            injector: Injector::new(),
            pending: AtomicU64::new(0),
            producer_done: AtomicBool::new(false),
            total: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
            scratch: Mutex::new(MasterScratch {
                buffers: SearchBuffers::new(MAX_LOOPS),
                iep: IepScratch::new(),
                deque: Worker::new_lifo(),
            }),
        }
    }

    /// Locks this slot's master scratch, recovering from poisoning (the
    /// scratch buffers are (re)cleared at every use, so a previous query's
    /// panic must not brick the lane).
    fn lock_scratch(&self) -> std::sync::MutexGuard<'_, MasterScratch> {
        self.scratch
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Accounts one finished/discarded task; wakes the submitter when this
    /// was the last one of a fully streamed job. The `Release` in the
    /// `fetch_sub` is what publishes the worker's reads of the job pointers
    /// (and its `total` contribution) to the submitter's `Acquire` load.
    fn account_task(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1
            && self.producer_done.load(Ordering::Acquire)
        {
            let _done = self
                .done_lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            self.done_cv.notify_all();
        }
    }
}

/// The persistent scratch of one lane's master (submitting) side.
struct MasterScratch {
    buffers: SearchBuffers,
    iep: IepScratch,
    /// The master's own deque for batched lane drains (one injector lock
    /// per [`crossbeam::deque::BATCH`] tasks instead of one per task). Not
    /// registered with the worker stealers: the master only ever holds one
    /// stolen batch at a time, so the imbalance is bounded by it.
    deque: Worker<TaggedTask>,
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    state: Mutex<State>,
    /// Signaled (one waiter per pushed batch with backlog) when job work
    /// may be available, and broadcast on shutdown.
    job_ready: Condvar,
    /// Signaled when a job slot frees up — the backpressure queue blocked
    /// submitters wait on.
    slot_free: Condvar,
    /// Set (then broadcast) when the pool is dropped.
    shutdown: AtomicBool,
    /// The fixed job-slot table (`max_in_flight` lanes).
    slots: Box<[JobSlot]>,
}

struct State {
    /// Indices of slots not currently owned by a job (jobs in flight =
    /// total slots minus this list's length).
    free_slots: Vec<u32>,
}

/// Locks the pool state, recovering from poisoning: every critical section
/// re-establishes the state invariants before unlocking, so a panic while
/// holding the lock leaves consistent data behind and the pool stays
/// usable after a failed query.
fn lock_state(shared: &Shared) -> std::sync::MutexGuard<'_, State> {
    shared
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A persistent pool of work-stealing workers serving multiple concurrent
/// jobs (see the module docs).
///
/// Dropping the pool shuts the workers down and joins them.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Wakes polling idle workers (one [`Parker`] per worker).
    unparkers: Vec<Unparker>,
    threads: usize,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("max_in_flight", &self.shared.slots.len())
            .field("in_flight", &self.in_flight())
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers (0 = all available cores) and
    /// the automatic in-flight job limit (see
    /// [`WorkerPool::with_max_in_flight`]). The workers are created parked
    /// and consume no CPU until a job arrives.
    pub fn new(threads: usize) -> Self {
        Self::with_max_in_flight(threads, 0)
    }

    /// Spawns a pool with `threads` workers (0 = all available cores) and
    /// room for `max_in_flight` concurrent jobs (0 = automatic:
    /// `max(threads, 2)`). Submitters beyond the limit block until a slot
    /// frees up — that blocking *is* the pool's backpressure.
    pub fn with_max_in_flight(threads: usize, max_in_flight: usize) -> Self {
        let threads = parallel::resolve_threads(threads);
        let max_in_flight = if max_in_flight > 0 {
            max_in_flight
        } else {
            threads.max(2)
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                free_slots: (0..max_in_flight as u32).collect(),
            }),
            job_ready: Condvar::new(),
            slot_free: Condvar::new(),
            shutdown: AtomicBool::new(false),
            slots: (0..max_in_flight).map(|_| JobSlot::new()).collect(),
        });

        let deques: Vec<Worker<TaggedTask>> = (0..threads).map(|_| Worker::new_lifo()).collect();
        let stealers: Arc<Vec<Stealer<TaggedTask>>> =
            Arc::new(deques.iter().map(Worker::stealer).collect());

        let mut unparkers = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for (me, deque) in deques.into_iter().enumerate() {
            let parker = Parker::new();
            unparkers.push(parker.unparker());
            let shared = Arc::clone(&shared);
            let stealers = Arc::clone(&stealers);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("graphpi-pool-{me}"))
                    .spawn(move || worker_thread(&shared, me, &deque, &stealers, &parker))
                    .expect("spawn pool worker"),
            );
        }

        Self {
            shared,
            unparkers,
            threads,
            handles,
        }
    }

    /// Number of persistent workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maximum number of jobs the pool keeps in flight simultaneously;
    /// extra submitters block until a slot frees.
    pub fn max_in_flight(&self) -> usize {
        self.shared.slots.len()
    }

    /// Number of jobs currently in flight (owned slots).
    pub fn in_flight(&self) -> usize {
        self.shared.slots.len() - lock_state(&self.shared).free_slots.len()
    }

    /// Number of pool worker threads still alive. Always equals
    /// [`WorkerPool::threads`] — workers survive panicking jobs — and is
    /// exposed so tests can prove exactly that.
    pub fn live_workers(&self) -> usize {
        self.handles.iter().filter(|h| !h.is_finished()).count()
    }

    /// Counts embeddings on the pool, mirroring
    /// [`parallel::count_parallel`] (including the `hub_bitsets` flag, which
    /// builds a throwaway [`HubGraph`]; prefer [`WorkerPool::count_with_hubs`]
    /// or a [`crate::engine::Session`] with a cached index when counting
    /// repeatedly). `options.threads` is ignored — the pool size is fixed at
    /// construction.
    pub fn count(&self, plan: &ExecutionPlan, graph: &CsrGraph, options: &ParallelOptions) -> u64 {
        if options.hub_bitsets {
            let hubs = HubGraph::build(graph, HubOptions::default());
            self.count_in(plan, ExecCtx::with_hubs(&hubs), options)
        } else {
            self.count_in(plan, ExecCtx::new(graph), options)
        }
    }

    /// Counts embeddings on the pool against a prebuilt hub index.
    pub fn count_with_hubs(
        &self,
        plan: &ExecutionPlan,
        hubs: &HubGraph,
        options: &ParallelOptions,
    ) -> u64 {
        self.count_in(plan, ExecCtx::with_hubs(hubs), options)
    }

    /// Counts embeddings in an explicit execution context. This is the warm
    /// serving path: no thread is spawned and no steady-state allocation is
    /// performed by the workers or the master. Safe to call from any number
    /// of threads concurrently — up to [`WorkerPool::max_in_flight`] jobs
    /// run simultaneously, later submitters block until a slot frees.
    pub fn count_in(
        &self,
        plan: &ExecutionPlan,
        ctx: ExecCtx<'_>,
        options: &ParallelOptions,
    ) -> u64 {
        let path = parallel::resolve_path(plan, options);
        if let Some(count) = parallel::run_degenerate(plan, ctx, path) {
            // Degenerate paths run entirely on the calling thread: no slot,
            // no queue, naturally concurrent.
            return count;
        }
        let ExecPath::Tasks {
            mode,
            depth,
            batch_size,
        } = path
        else {
            unreachable!("run_degenerate handles every other path");
        };

        let slot_idx = self.acquire_slot();
        let shared = &*self.shared;
        let slot = &shared.slots[slot_idx];

        // Install the job. We own the slot exclusively and the previous
        // job's completion protocol left the lane drained, so plain stores
        // are enough: the injector push below publishes everything.
        debug_assert_eq!(slot.pending.load(Ordering::Relaxed), 0);
        slot.total.store(0, Ordering::Relaxed);
        slot.producer_done.store(false, Ordering::Relaxed);
        slot.panicked.store(false, Ordering::Relaxed);
        slot.plan
            .store(plan as *const ExecutionPlan as *mut _, Ordering::Relaxed);
        slot.graph
            .store(ctx.graph() as *const CsrGraph as *mut _, Ordering::Relaxed);
        slot.hubs.store(
            ctx.hubs()
                .map_or(std::ptr::null_mut(), |h| h as *const HubGraph as *mut _),
            Ordering::Relaxed,
        );
        slot.iep_mode
            .store(mode == CountMode::Iep, Ordering::Relaxed);
        // Counts are the interactive workload: mode pointer null (workers
        // take the unchanged counting hot path) and high scheduling
        // priority.
        slot.mode.store(std::ptr::null_mut(), Ordering::Relaxed);
        slot.high_priority.store(true, Ordering::Relaxed);

        // Completion guard *before* the scratch lock: on unwind the scratch
        // guard drops (and unlocks) first, so `JobGuard::drop` can relock it
        // to drain the master deque.
        let guard = JobGuard { shared, slot_idx };
        let mut scratch_guard = slot.lock_scratch();
        let scratch = &mut *scratch_guard;
        debug_assert!(scratch.deque.is_empty());

        let tag = slot_idx as u32;
        parallel::stream_prefix_batches(plan, ctx, depth, batch_size, |batch| {
            // Account before publishing so `pending` can never be observed
            // at zero while tasks sit in the lane.
            slot.pending
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            slot.injector
                .push_batch(batch.drain(..).map(|task| TaggedTask { slot: tag, task }));
            // Backlog-driven ramp-up: wake one dormant worker per pushed
            // batch, but only once more than a full batch is sitting
            // unclaimed — a job small enough for this thread alone never
            // pays a single context switch, while a large job's backlog
            // wakes the pool batch by batch. The empty critical section
            // closes the check-to-wait window of a worker about to park.
            if slot.injector.len() > batch_size {
                drop(lock_state(shared));
                shared.job_ready.notify_one();
            }
        });
        slot.producer_done.store(true, Ordering::Release);

        // Master helping (caller-runs): drain this job's own lane with the
        // lane's persistent scratch. Master-popped tasks are accounted at
        // pop — the pointees live on this very stack frame, so only
        // *worker*-held tasks need the completion accounting — which makes
        // a panic below leave no unaccounted in-hand task behind.
        let mut local = 0u64;
        loop {
            let tagged = match scratch.deque.pop() {
                Some(task) => task,
                None => match slot.injector.steal_batch_and_pop(&scratch.deque) {
                    Steal::Success(task) => task,
                    Steal::Empty => break,
                    Steal::Retry => continue,
                },
            };
            slot.pending.fetch_sub(1, Ordering::Relaxed);
            if slot.panicked.load(Ordering::Relaxed) {
                // A worker already poisoned this job: discard instead of
                // burning time on a result that will be thrown away.
                continue;
            }
            local += parallel::count_one_task(
                plan,
                ctx,
                mode,
                tagged.task.as_slice(),
                &mut scratch.buffers,
                &mut scratch.iep,
            );
        }
        slot.total.fetch_add(local, Ordering::Relaxed);

        drop(scratch_guard);
        let (raw, panicked) = guard.finish();
        if panicked {
            panic!("a pool worker panicked while executing this query");
        }
        parallel::finalize_count(raw, mode, plan)
    }

    /// Runs a **mode** job (enumeration / orbit counts / sampling) on the
    /// pool: the same slot protocol, task streaming, caller-runs helping
    /// and completion accounting as [`WorkerPool::count_in`], but each task
    /// folds its results into `shared` through
    /// [`parallel::mode_one_task`] instead of adding to the slot total.
    /// Mode jobs run at **low** scheduling priority: workers only pull from
    /// their lanes when every interactive count lane is dry.
    ///
    /// The plan must be compiled with IEP disabled
    /// ([`crate::engine::PlanOptions::enable_iep`] = false) and
    /// `options.mode` must be [`CountMode::Enumerate`]; sinks observe
    /// individual embeddings, which IEP never materialises.
    pub(crate) fn run_mode_in(
        &self,
        plan: &ExecutionPlan,
        ctx: ExecCtx<'_>,
        options: &ParallelOptions,
        shared: &ModeShared,
    ) {
        debug_assert_eq!(options.mode, CountMode::Enumerate);
        let path = parallel::resolve_path(plan, options);
        if parallel::run_mode_degenerate(plan, ctx, path, shared) {
            return;
        }
        let ExecPath::Tasks {
            depth, batch_size, ..
        } = path
        else {
            unreachable!("run_mode_degenerate handles every other path");
        };

        let slot_idx = self.acquire_slot();
        let pool_shared = &*self.shared;
        let slot = &pool_shared.slots[slot_idx];

        debug_assert_eq!(slot.pending.load(Ordering::Relaxed), 0);
        slot.total.store(0, Ordering::Relaxed);
        slot.producer_done.store(false, Ordering::Relaxed);
        slot.panicked.store(false, Ordering::Relaxed);
        slot.plan
            .store(plan as *const ExecutionPlan as *mut _, Ordering::Relaxed);
        slot.graph
            .store(ctx.graph() as *const CsrGraph as *mut _, Ordering::Relaxed);
        slot.hubs.store(
            ctx.hubs()
                .map_or(std::ptr::null_mut(), |h| h as *const HubGraph as *mut _),
            Ordering::Relaxed,
        );
        slot.iep_mode.store(false, Ordering::Relaxed);
        slot.mode
            .store(shared as *const ModeShared as *mut _, Ordering::Relaxed);
        slot.high_priority.store(false, Ordering::Relaxed);

        let guard = JobGuard {
            shared: pool_shared,
            slot_idx,
        };
        let mut scratch_guard = slot.lock_scratch();
        let scratch = &mut *scratch_guard;
        debug_assert!(scratch.deque.is_empty());

        let tag = slot_idx as u32;
        parallel::stream_prefix_batches(plan, ctx, depth, batch_size, |batch| {
            // Once an enumeration's budget is fully claimed every further
            // task would early-return anyway; stop feeding the queue and
            // let the in-flight tail drain.
            if shared.enumeration_full() {
                batch.clear();
                return;
            }
            slot.pending
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            slot.injector
                .push_batch(batch.drain(..).map(|task| TaggedTask { slot: tag, task }));
            if slot.injector.len() > batch_size {
                drop(lock_state(pool_shared));
                pool_shared.job_ready.notify_one();
            }
        });
        slot.producer_done.store(true, Ordering::Release);

        // Caller-runs helping, mirroring `count_in`.
        loop {
            let tagged = match scratch.deque.pop() {
                Some(task) => task,
                None => match slot.injector.steal_batch_and_pop(&scratch.deque) {
                    Steal::Success(task) => task,
                    Steal::Empty => break,
                    Steal::Retry => continue,
                },
            };
            slot.pending.fetch_sub(1, Ordering::Relaxed);
            if slot.panicked.load(Ordering::Relaxed) {
                continue;
            }
            parallel::mode_one_task(plan, ctx, shared, tagged.task.as_slice(), &mut scratch.buffers);
        }

        drop(scratch_guard);
        let (_, panicked) = guard.finish();
        if panicked {
            panic!("a pool worker panicked while executing this query");
        }
    }

    /// Claims a free job slot, blocking while `max_in_flight` jobs are
    /// already running (the pool's backpressure).
    fn acquire_slot(&self) -> usize {
        let mut state = lock_state(&self.shared);
        loop {
            if let Some(idx) = state.free_slots.pop() {
                return idx as usize;
            }
            state = self
                .shared
                .slot_free
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Empty critical section: a worker between its shutdown check and
        // its condvar wait holds the state lock, so acquiring it here
        // guarantees the broadcast below reaches every sleeper.
        drop(lock_state(&self.shared));
        self.shared.job_ready.notify_all();
        self.shared.slot_free.notify_all();
        for unparker in &self.unparkers {
            unparker.unpark();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Completes a job: finishes the accounting (discarding any tasks the
/// unwinding master left queued), blocks until every worker-held task of
/// the job retires, then frees the slot. Runs on drop so that even a
/// panicking master cannot unwind past stack data the workers still
/// reference; the normal path calls [`JobGuard::finish`] to also read the
/// job's results before the slot can be reused.
struct JobGuard<'a> {
    shared: &'a Shared,
    slot_idx: usize,
}

impl JobGuard<'_> {
    /// Normal-path completion: returns the raw total and the panic flag
    /// (read *before* the slot is released, after which another submitter
    /// may reset them).
    fn finish(self) -> (u64, bool) {
        let result = self.complete();
        std::mem::forget(self); // completion already ran; skip Drop
        result
    }

    fn complete(&self) -> (u64, bool) {
        let slot = &self.shared.slots[self.slot_idx];
        // Normal path: the master already set `producer_done` and drained
        // the lane, so everything below is a no-op until the wait. On
        // unwind neither holds: finish streaming bookkeeping and discard
        // the unprocessed backlog (the count is unwinding anyway) so the
        // retire condition can become true.
        slot.producer_done.store(true, Ordering::Release);
        {
            let scratch = slot.lock_scratch();
            loop {
                let popped = match scratch.deque.pop() {
                    Some(task) => Some(task),
                    None => loop {
                        match slot.injector.steal() {
                            Steal::Success(task) => break Some(task),
                            Steal::Empty => break None,
                            Steal::Retry => continue,
                        }
                    },
                };
                match popped {
                    // Any task still physically present in the deque or the
                    // lane is by definition unaccounted (accounting happens
                    // at pop), so account each as it is discarded.
                    Some(_) => slot.pending.fetch_sub(1, Ordering::Relaxed),
                    None => break,
                };
            }
        }
        // Wait for worker-held tasks to retire; their `Release` decrements
        // paired with this `Acquire` load make every worker access to the
        // submitter's stack happen-before the return.
        {
            let mut done = slot
                .done_lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while slot.pending.load(Ordering::Acquire) > 0 {
                done = slot
                    .done_cv
                    .wait(done)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        let raw = slot.total.load(Ordering::Relaxed);
        let panicked = slot.panicked.load(Ordering::Relaxed);
        // Free the slot (and wake one blocked submitter).
        let mut state = lock_state(self.shared);
        state.free_slots.push(self.slot_idx as u32);
        drop(state);
        self.shared.slot_free.notify_one();
        (raw, panicked)
    }
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        let _ = self.complete();
    }
}

/// The persistent worker body: scan the job lanes and sibling deques for
/// tagged tasks (any mix of concurrent jobs), execute each against its own
/// job's plan with scratch that survives across jobs, and idle adaptively
/// (short [`Parker`] naps first, deep condvar sleep after
/// [`DEEP_IDLE_ROUNDS`] empty rounds).
fn worker_thread(
    shared: &Shared,
    me: usize,
    deque: &Worker<TaggedTask>,
    stealers: &[Stealer<TaggedTask>],
    parker: &Parker,
) {
    // The scratch that makes the warm path allocation-free: created once
    // per worker and reused for every task of every job the pool ever runs.
    let mut buffers = SearchBuffers::new(MAX_LOOPS);
    let mut iep_scratch = IepScratch::new();
    let mut rotation = me; // fairness: stagger which lane each worker scans first
    let mut idle_rounds = 0u32;

    loop {
        match next_task(deque, me, stealers, &shared.slots, &mut rotation) {
            Some(tagged) => {
                idle_rounds = 0;
                let slot = &shared.slots[tagged.slot as usize];
                run_task(slot, &tagged.task, &mut buffers, &mut iep_scratch);
            }
            None => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if idle_rounds < DEEP_IDLE_ROUNDS {
                    idle_rounds += 1;
                    parker.park_timeout(IDLE_PARK);
                } else {
                    // Deep sleep until a submitter's backlog notify (or
                    // shutdown). Re-check for backlog under the state lock:
                    // a batch pushed before this point is visible here, and
                    // one pushed after will re-notify while we wait.
                    let state = lock_state(shared);
                    if shared.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    if shared.slots.iter().all(|s| s.injector.is_empty()) {
                        let woken = shared
                            .job_ready
                            .wait(state)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        drop(woken);
                    }
                    idle_rounds = 0;
                }
            }
        }
    }
}

/// Executes one tagged task against its job slot, isolating panics to that
/// job, then accounts it. Tasks of a job already marked panicked are
/// discarded (accounted without execution).
fn run_task(
    slot: &JobSlot,
    task: &PrefixTask,
    buffers: &mut SearchBuffers,
    iep_scratch: &mut IepScratch,
) {
    if !slot.panicked.load(Ordering::Relaxed) {
        // SAFETY: we hold a popped, not-yet-accounted task of this slot's
        // job, so the submitter is still blocked from returning and the
        // pointers are live (module-level safety model). The queue hop that
        // delivered the task orders these loads after the submitter's
        // stores. The mode pointer (when non-null) targets the same
        // submitter stack frame and shares the same validity protocol.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe {
            let plan = &*slot.plan.load(Ordering::Relaxed);
            let hubs = slot.hubs.load(Ordering::Relaxed);
            let ctx = if hubs.is_null() {
                ExecCtx::new(&*slot.graph.load(Ordering::Relaxed))
            } else {
                ExecCtx::with_hubs(&*hubs)
            };
            let mode_ptr = slot.mode.load(Ordering::Relaxed);
            if mode_ptr.is_null() {
                // Count job: the unchanged hot path.
                let mode = if slot.iep_mode.load(Ordering::Relaxed) {
                    CountMode::Iep
                } else {
                    CountMode::Enumerate
                };
                parallel::count_one_task(plan, ctx, mode, task.as_slice(), buffers, iep_scratch)
            } else {
                // Mode job: results fold into the shared mode state; the
                // slot total stays zero.
                parallel::mode_one_task(plan, ctx, &*mode_ptr, task.as_slice(), buffers);
                0
            }
        }));
        match result {
            Ok(count) => {
                slot.total.fetch_add(count, Ordering::Relaxed);
            }
            // Poison only this job; the worker thread survives and the
            // scratch is safe to reuse (it is re-cleared at every use).
            Err(_) => slot.panicked.store(true, Ordering::Relaxed),
        }
    }
    slot.account_task();
}

/// Task acquisition order: own deque, then a batch from some job lane
/// (rotating the starting lane per call so workers spread across jobs),
/// then batches stolen from sibling deques. Tags keep concurrent jobs'
/// tasks apart wherever they travel.
fn next_task(
    deque: &Worker<TaggedTask>,
    me: usize,
    stealers: &[Stealer<TaggedTask>],
    slots: &[JobSlot],
    rotation: &mut usize,
) -> Option<TaggedTask> {
    if let Some(task) = deque.pop() {
        return Some(task);
    }
    let lanes = slots.len();
    *rotation = (*rotation + 1) % lanes;
    // Two-pass priority scan: high-priority lanes (interactive counts)
    // first, then low-priority lanes (paged enumeration and other mode
    // jobs). Within each pass the rotation still spreads workers across
    // lanes, so mode jobs make progress whenever count lanes are dry but
    // never starve them of workers.
    for pass in 0..2 {
        let want_high = pass == 0;
        for i in 0..lanes {
            let slot = &slots[(*rotation + i) % lanes];
            if slot.high_priority.load(Ordering::Relaxed) != want_high {
                continue;
            }
            loop {
                match slot.injector.steal_batch_and_pop(deque) {
                    Steal::Success(task) => return Some(task),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
    }
    for (i, stealer) in stealers.iter().enumerate() {
        if i == me {
            continue;
        }
        match stealer.steal_batch_and_pop(deque) {
            Steal::Success(task) => return Some(task),
            // On Empty move to the next victim; on Retry (lost a CAS race)
            // likewise — the worker's outer loop revisits every victim.
            Steal::Empty | Steal::Retry => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;
    use crate::exec::{interp, parallel::count_parallel};
    use crate::schedule::efficient_schedules;
    use graphpi_graph::generators;
    use graphpi_pattern::prefab;
    use graphpi_pattern::restriction::{generate_restriction_sets, GenerationOptions};

    fn plan_for(pattern: graphpi_pattern::Pattern) -> ExecutionPlan {
        let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
        let schedules = efficient_schedules(&pattern);
        Configuration::new(pattern, schedules[0].clone(), sets[0].clone()).compile()
    }

    /// A plan corrupted so task processing indexes out of bounds: loop 1
    /// claims a parent at position 3, but only one vertex is bound.
    fn poison_plan() -> ExecutionPlan {
        let mut bad = plan_for(graphpi_pattern::Pattern::new(2, &[(0, 1)]));
        bad.loops[1].parents = vec![3];
        bad
    }

    #[test]
    fn pool_matches_scoped_execution() {
        let g = generators::power_law(200, 5, 9);
        let pool = WorkerPool::new(3);
        for (name, pattern) in prefab::evaluation_patterns().into_iter().take(3) {
            let plan = plan_for(pattern);
            for mode in [CountMode::Enumerate, CountMode::Iep] {
                let options = ParallelOptions {
                    threads: 3,
                    mode,
                    ..Default::default()
                };
                assert_eq!(
                    pool.count(&plan, &g, &options),
                    count_parallel(&plan, &g, options),
                    "{name} ({mode:?})"
                );
            }
        }
    }

    #[test]
    fn pool_reuses_workers_across_many_jobs() {
        let g = generators::power_law(150, 5, 4);
        let pool = WorkerPool::new(2);
        let plan = plan_for(prefab::house());
        let expected = interp::count_embeddings(&plan, &g);
        for _ in 0..25 {
            assert_eq!(pool.count(&plan, &g, &ParallelOptions::default()), expected);
        }
    }

    #[test]
    fn pool_alternates_between_plans_and_graphs() {
        let g1 = generators::power_law(150, 5, 1);
        let g2 = generators::erdos_renyi(120, 700, 2);
        let house = plan_for(prefab::house());
        let tri = plan_for(prefab::triangle());
        let pool = WorkerPool::new(2);
        let options = ParallelOptions::default();
        for _ in 0..5 {
            assert_eq!(
                pool.count(&house, &g1, &options),
                interp::count_embeddings(&house, &g1)
            );
            assert_eq!(
                pool.count(&tri, &g2, &options),
                interp::count_embeddings(&tri, &g2)
            );
        }
    }

    #[test]
    fn single_worker_pool_works() {
        let g = generators::power_law(150, 5, 17);
        let pool = WorkerPool::new(1);
        let plan = plan_for(prefab::rectangle());
        assert_eq!(
            pool.count(&plan, &g, &ParallelOptions::default()),
            interp::count_embeddings(&plan, &g)
        );
    }

    #[test]
    fn pool_handles_degenerate_paths() {
        let pool = WorkerPool::new(2);
        // Empty graph.
        let g = graphpi_graph::GraphBuilder::new().num_vertices(40).build();
        let plan = plan_for(prefab::house());
        assert_eq!(pool.count(&plan, &g, &ParallelOptions::default()), 0);
        // Full-depth prefixes (master-only path).
        let g = generators::erdos_renyi(60, 250, 3);
        let edge_plan = plan_for(graphpi_pattern::Pattern::new(2, &[(0, 1)]));
        let options = ParallelOptions {
            prefix_depth: Some(2),
            ..Default::default()
        };
        assert_eq!(
            pool.count(&edge_plan, &g, &options),
            interp::count_embeddings(&edge_plan, &g)
        );
    }

    #[test]
    fn pool_with_prebuilt_hubs_matches_plain() {
        let g = generators::power_law(180, 6, 23);
        let hubs = HubGraph::build(&g, HubOptions::default());
        let pool = WorkerPool::new(2);
        let plan = plan_for(prefab::house());
        let options = ParallelOptions::default();
        assert_eq!(
            pool.count_with_hubs(&plan, &hubs, &options),
            pool.count(&plan, &g, &options)
        );
    }

    #[test]
    fn dropping_an_idle_pool_joins_cleanly() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        assert_eq!(pool.live_workers(), 4);
        drop(pool); // must not hang
    }

    #[test]
    fn max_in_flight_resolution() {
        let pool = WorkerPool::with_max_in_flight(3, 0);
        assert_eq!(pool.max_in_flight(), 3);
        assert_eq!(pool.in_flight(), 0);
        let pool = WorkerPool::with_max_in_flight(1, 0);
        assert_eq!(pool.max_in_flight(), 2, "floor of two lanes");
        let pool = WorkerPool::with_max_in_flight(2, 7);
        assert_eq!(pool.max_in_flight(), 7);
    }

    #[test]
    fn concurrent_submitters_compute_exact_counts() {
        let g = generators::power_law(150, 5, 31);
        let pool = WorkerPool::with_max_in_flight(2, 3);
        let plan = plan_for(prefab::house());
        let expected = interp::count_embeddings(&plan, &g);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let pool = &pool;
                let plan = &plan;
                let g = &g;
                scope.spawn(move || {
                    for _ in 0..5 {
                        assert_eq!(pool.count(plan, g, &ParallelOptions::default()), expected);
                    }
                });
            }
        });
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn concurrent_mixed_jobs_do_not_mix_counts() {
        // Different plans and different modes in flight at once: every
        // submitter must get exactly its own job's count.
        let g = generators::power_law(160, 5, 13);
        let pool = WorkerPool::with_max_in_flight(2, 4);
        let plans: Vec<ExecutionPlan> = [prefab::triangle(), prefab::rectangle(), prefab::house()]
            .into_iter()
            .map(plan_for)
            .collect();
        let expected: Vec<u64> = plans
            .iter()
            .map(|p| interp::count_embeddings(p, &g))
            .collect();
        std::thread::scope(|scope| {
            for (i, (plan, &want)) in plans.iter().zip(&expected).enumerate() {
                let pool = &pool;
                let g = &g;
                scope.spawn(move || {
                    let mode = if i % 2 == 0 {
                        CountMode::Enumerate
                    } else {
                        CountMode::Iep
                    };
                    let options = ParallelOptions {
                        mode,
                        batch_size: 1 + i, // tiny batches force worker traffic
                        ..Default::default()
                    };
                    for _ in 0..6 {
                        assert_eq!(pool.count(plan, g, &options), want, "job {i}");
                    }
                });
            }
        });
    }

    #[test]
    fn backpressure_blocks_beyond_max_in_flight() {
        let g = generators::power_law(170, 5, 41);
        let pool = WorkerPool::with_max_in_flight(2, 2);
        let plan = plan_for(prefab::house());
        let expected = interp::count_embeddings(&plan, &g);
        let max_seen = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let sampler = {
                let pool = &pool;
                let max_seen = &max_seen;
                let stop = &stop;
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        max_seen.fetch_max(pool.in_flight() as u64, Ordering::Relaxed);
                        std::thread::yield_now();
                    }
                })
            };
            let submitters: Vec<_> = (0..5)
                .map(|_| {
                    let pool = &pool;
                    let plan = &plan;
                    let g = &g;
                    scope.spawn(move || {
                        for _ in 0..4 {
                            assert_eq!(pool.count(plan, g, &ParallelOptions::default()), expected);
                        }
                    })
                })
                .collect();
            for handle in submitters {
                handle.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
            sampler.join().unwrap();
        });
        assert!(
            max_seen.load(Ordering::Relaxed) <= 2,
            "in_flight exceeded max_in_flight: {}",
            max_seen.load(Ordering::Relaxed)
        );
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn panicking_query_does_not_brick_the_pool() {
        let g = generators::power_law(120, 5, 3);
        let pool = WorkerPool::new(2);
        let good = plan_for(prefab::house());
        let expected = interp::count_embeddings(&good, &g);
        let bad = poison_plan();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.count(&bad, &g, &ParallelOptions::default())
        }));
        assert!(result.is_err(), "corrupted plan must panic");
        // The pool must remain fully usable afterwards — including the
        // worker threads, which survive the panicking job.
        assert_eq!(pool.live_workers(), 2, "workers must survive a bad job");
        for _ in 0..3 {
            assert_eq!(pool.count(&good, &g, &ParallelOptions::default()), expected);
        }
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn repeated_panics_leave_all_workers_alive() {
        // Regression for the original pool, whose workers unwound and died
        // with the first panicking task they executed: enough bad jobs
        // would silently strip the pool down to master-only execution.
        let g = generators::power_law(120, 5, 7);
        let pool = WorkerPool::new(2);
        let good = plan_for(prefab::house());
        let expected = interp::count_embeddings(&good, &g);
        let bad = poison_plan();
        for _ in 0..4 {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // Tiny batches maximise the chance workers (not just the
                // master) execute poisoned tasks.
                pool.count(
                    &bad,
                    &g,
                    &ParallelOptions {
                        batch_size: 1,
                        ..Default::default()
                    },
                )
            }));
            assert!(result.is_err());
            assert_eq!(pool.count(&good, &g, &ParallelOptions::default()), expected);
        }
        assert_eq!(pool.live_workers(), 2);
    }

    #[test]
    fn panicking_job_is_isolated_from_concurrent_jobs() {
        let g = generators::power_law(150, 5, 57);
        let pool = WorkerPool::with_max_in_flight(2, 3);
        let good = plan_for(prefab::house());
        let expected = interp::count_embeddings(&good, &g);
        let bad = poison_plan();
        std::thread::scope(|scope| {
            // One thread keeps submitting poisoned jobs...
            let poisoner = {
                let pool = &pool;
                let bad = &bad;
                let g = &g;
                scope.spawn(move || {
                    for _ in 0..6 {
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            pool.count(
                                bad,
                                g,
                                &ParallelOptions {
                                    batch_size: 1,
                                    ..Default::default()
                                },
                            )
                        }));
                        assert!(result.is_err());
                    }
                })
            };
            // ...while two others demand exact counts throughout.
            for _ in 0..2 {
                let pool = &pool;
                let good = &good;
                let g = &g;
                scope.spawn(move || {
                    for _ in 0..8 {
                        assert_eq!(pool.count(good, g, &ParallelOptions::default()), expected);
                    }
                });
            }
            poisoner.join().unwrap();
        });
        assert_eq!(pool.live_workers(), 2);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn pool_iep_unrestricted_fallback_matches_sequential() {
        use crate::schedule::Schedule;
        use graphpi_pattern::restriction::RestrictionSet;
        let g = generators::erdos_renyi(100, 500, 5);
        let pattern = prefab::path_pattern(5);
        let schedule = Schedule::new(&pattern, vec![2, 1, 3, 0, 4]);
        let restrictions = RestrictionSet::from_pairs(&[(2, 1)]);
        let plan = Configuration::new(pattern, schedule, restrictions).compile();
        let pool = WorkerPool::new(2);
        let options = ParallelOptions {
            mode: CountMode::Iep,
            ..Default::default()
        };
        assert_eq!(
            pool.count(&plan, &g, &options),
            crate::exec::iep::count_embeddings_iep(&plan, &g)
        );
    }
}
