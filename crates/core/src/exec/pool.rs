//! A persistent work-stealing worker pool: the warm serving path.
//!
//! [`super::parallel::count_parallel`] spawns and joins a fresh
//! `std::thread::scope` per call. That is the right shape for one-shot batch
//! counting, but in a long-lived service handling many queries the fixed
//! costs dominate at fine task granularity: thread spawn/join is on the
//! order of a millisecond, and every spawn re-allocates the per-worker
//! search scratch. [`WorkerPool`] removes both:
//!
//! * **Workers are spawned once** and live as long as the pool. Between
//!   jobs they park on a condvar; within a job, a worker that runs out of
//!   stealable tasks parks on a [`crossbeam::sync::Parker`] with a short
//!   timeout (bounding steal latency) instead of spinning.
//! * Each worker keeps its Chase–Lev deque, [`SearchBuffers`] and
//!   [`IepScratch`] **alive across jobs**, so the warm path performs zero
//!   thread spawns and zero steady-state allocation.
//! * Jobs run the exact same `process_tasks` worker loop and
//!   `resolve_path` strategy resolution (both in [`super::parallel`]) as
//!   the scoped executor, which is what keeps pooled counts bit-identical
//!   to scoped counts.
//!
//! Two properties tune the pool for *small* queries, where a naive pool
//! would drown the matching work in handshake overhead:
//!
//! * **Lazy wakeups** — posting a job wakes nobody by itself; the master
//!   issues one `notify_one` per pushed batch *once more than a full batch
//!   of backlog is sitting unclaimed in the injector*, so a query the
//!   master can chew alone pays zero context switches while a large
//!   query's backlog ramps up the whole pool batch by batch. Workers that
//!   never wake for a job simply skip its epoch; workers already active
//!   but momentarily out of work self-wake every `IDLE_PARK`, and the
//!   job-end unpark broadcast retires them promptly.
//! * **Caller-runs master helping** — after streaming, the submitting
//!   thread drains the injector itself (with its own persistent scratch,
//!   kept behind the submit lock). Tiny jobs often complete entirely on
//!   the caller with a single worker assisting; job completion waits only
//!   for workers that actually *activated* (picked the job up), not for
//!   every pool thread to cycle through a wake/retire handshake.
//!
//! One job runs at a time; concurrent [`WorkerPool::count_in`] calls from
//! different threads serialize on the submit lock, which is what a shared
//! [`crate::engine::Session`] relies on.

use crate::config::{ExecutionPlan, MAX_LOOPS};
use crate::exec::iep::{self, IepScratch};
use crate::exec::interp::{self, ExecCtx, SearchBuffers};
use crate::exec::parallel::{self, CountMode, ExecPath, ParallelOptions, PrefixTask};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use crossbeam::sync::{Parker, Unparker};
use graphpi_graph::csr::CsrGraph;
use graphpi_graph::hub::{HubGraph, HubOptions};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long an in-job idle worker sleeps before re-checking the injector
/// and sibling deques. Short enough that steal latency stays invisible next
/// to task runtimes, long enough to release the core on an oversubscribed
/// machine.
const IDLE_PARK: Duration = Duration::from_micros(50);

/// A unit of work posted to the pool: type-erased pointers to the
/// submitter's stack. Sound because [`WorkerPool::count_in`] does not return
/// (or unwind) past the pointees until every *activated* worker has retired
/// from the job, and workers can only dereference these pointers after
/// activating (observing `job` as `Some` under the state lock) — see
/// [`JobGuard`].
#[derive(Clone, Copy)]
struct Job {
    plan: *const ExecutionPlan,
    graph: *const CsrGraph,
    /// Null when executing without hub acceleration.
    hubs: *const HubGraph,
    mode: CountMode,
    injector: *const Injector<PrefixTask>,
    producer_done: *const AtomicBool,
    total: *const AtomicU64,
}

// SAFETY: the pointees are Sync (plan/graph/hubs are shared immutably;
// injector/flags are designed for concurrent access) and their lifetime is
// enforced by the completion protocol described on `Job`.
unsafe impl Send for Job {}

/// State shared between the pool handle and its worker threads.
struct Shared {
    state: Mutex<State>,
    /// Signaled (one waiter per pushed batch) when job work may be
    /// available, and broadcast on shutdown.
    job_ready: Condvar,
    /// Signaled when the last activated worker retires from the current job.
    job_done: Condvar,
}

struct State {
    /// Id of the most recently posted job (0 = none yet). A worker
    /// activates for a given epoch at most once.
    epoch: u64,
    /// The posted job; cleared when the job completes, so late-waking
    /// workers can never observe dangling job pointers.
    job: Option<Job>,
    /// Workers currently activated on (processing) the current job.
    active: usize,
    /// Set when a worker unwinds mid-job; the submitter re-raises after
    /// the job completes, mirroring the scoped executor's panic
    /// propagation through `thread::scope`.
    panicked: bool,
    shutdown: bool,
}

/// Locks the pool state, recovering from poisoning: every critical section
/// re-establishes the state invariants before unlocking, so a panic while
/// holding the lock leaves consistent data behind and the pool stays
/// usable after a failed query.
fn lock_state(shared: &Shared) -> std::sync::MutexGuard<'_, State> {
    shared
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The persistent scratch of the master (submitting) side, kept behind the
/// submit lock so repeated queries reuse it: master helping allocates
/// nothing in steady state, same as the workers.
struct MasterScratch {
    buffers: SearchBuffers,
    iep: IepScratch,
    /// The master's own deque for batched injector drains (one injector
    /// lock per [`crossbeam::deque::BATCH`] tasks instead of one per task).
    /// Not registered with the worker stealers: the master only ever holds
    /// one stolen batch at a time, so the imbalance is bounded by it.
    deque: Worker<PrefixTask>,
}

/// A persistent pool of work-stealing workers (see the module docs).
///
/// Dropping the pool shuts the workers down and joins them.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Wakes in-job idle workers (one [`Parker`] per worker).
    unparkers: Vec<Unparker>,
    /// Serializes jobs (one at a time; submitters queue here) and owns the
    /// master-side scratch.
    submit: Mutex<MasterScratch>,
    threads: usize,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers (0 = all available cores). The
    /// workers are created parked and consume no CPU until a job arrives.
    pub fn new(threads: usize) -> Self {
        let threads = parallel::resolve_threads(threads);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                panicked: false,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
        });

        let deques: Vec<Worker<PrefixTask>> = (0..threads).map(|_| Worker::new_lifo()).collect();
        let stealers: Arc<Vec<Stealer<PrefixTask>>> =
            Arc::new(deques.iter().map(Worker::stealer).collect());

        let mut unparkers = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for (me, deque) in deques.into_iter().enumerate() {
            let parker = Parker::new();
            unparkers.push(parker.unparker());
            let shared = Arc::clone(&shared);
            let stealers = Arc::clone(&stealers);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("graphpi-pool-{me}"))
                    .spawn(move || worker_thread(shared, me, deque, stealers, parker))
                    .expect("spawn pool worker"),
            );
        }

        Self {
            shared,
            unparkers,
            submit: Mutex::new(MasterScratch {
                buffers: SearchBuffers::new(MAX_LOOPS),
                iep: IepScratch::new(),
                deque: Worker::new_lifo(),
            }),
            threads,
            handles,
        }
    }

    /// Number of persistent workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Counts embeddings on the pool, mirroring
    /// [`parallel::count_parallel`] (including the `hub_bitsets` flag, which
    /// builds a throwaway [`HubGraph`]; prefer [`WorkerPool::count_with_hubs`]
    /// or a [`crate::engine::Session`] with a cached index when counting
    /// repeatedly). `options.threads` is ignored — the pool size is fixed at
    /// construction.
    pub fn count(&self, plan: &ExecutionPlan, graph: &CsrGraph, options: &ParallelOptions) -> u64 {
        if options.hub_bitsets {
            let hubs = HubGraph::build(graph, HubOptions::default());
            self.count_in(plan, ExecCtx::with_hubs(&hubs), options)
        } else {
            self.count_in(plan, ExecCtx::new(graph), options)
        }
    }

    /// Counts embeddings on the pool against a prebuilt hub index.
    pub fn count_with_hubs(
        &self,
        plan: &ExecutionPlan,
        hubs: &HubGraph,
        options: &ParallelOptions,
    ) -> u64 {
        self.count_in(plan, ExecCtx::with_hubs(hubs), options)
    }

    /// Counts embeddings in an explicit execution context. This is the warm
    /// serving path: no thread is spawned and no steady-state allocation is
    /// performed by the workers or the master.
    pub fn count_in(
        &self,
        plan: &ExecutionPlan,
        ctx: ExecCtx<'_>,
        options: &ParallelOptions,
    ) -> u64 {
        let path = parallel::resolve_path(plan, options);
        if let Some(count) = parallel::run_degenerate(plan, ctx, path) {
            return count;
        }
        let ExecPath::Tasks {
            mode,
            depth,
            batch_size,
        } = path
        else {
            unreachable!("run_degenerate handles every other path");
        };

        // One job at a time: later submitters (other threads sharing a
        // Session) queue here until the current job completes. The guard
        // doubles as the master's persistent scratch. Poisoning is
        // recovered: the scratch buffers are (re)cleared at every use, so
        // a previous query's panic must not brick the session.
        let mut scratch = self
            .submit
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);

        let injector: Injector<PrefixTask> = Injector::new();
        let producer_done = AtomicBool::new(false);
        let total = AtomicU64::new(0);
        let job = Job {
            plan,
            graph: ctx.graph(),
            hubs: ctx
                .hubs()
                .map_or(std::ptr::null(), |h| h as *const HubGraph),
            mode,
            injector: &injector,
            producer_done: &producer_done,
            total: &total,
        };

        // A previous query that panicked mid-drain may have left its tasks
        // in the master deque; they belong to a dead job and must not leak
        // into this one. No-op (a single None pop) on the normal path.
        while scratch.deque.pop().is_some() {}

        {
            let mut state = lock_state(&self.shared);
            debug_assert!(state.job.is_none() && state.active == 0);
            state.epoch += 1;
            state.job = Some(job);
            state.panicked = false;
            // No wakeup yet: workers are woken one per pushed batch, so a
            // small job does not pay `threads` context switches.
        }

        // From here on the job is visible to the workers; the guard blocks
        // (even on unwind) until every activated worker has retired, so the
        // pointees on this stack frame outlive all worker accesses.
        let guard = JobGuard {
            shared: &self.shared,
            producer_done: &producer_done,
            unparkers: &self.unparkers,
            injector: &injector,
        };

        parallel::stream_tasks(
            plan,
            ctx,
            depth,
            batch_size,
            &injector,
            &producer_done,
            || {
                // Backlog-driven ramp-up: wake one dormant worker per pushed
                // batch, but only once more than a full batch is sitting
                // unclaimed — a job small enough for the master alone never
                // pays a single context switch, while a large job's backlog
                // wakes the whole pool batch by batch. Already-active idle
                // workers are not swept here (that would be O(threads) per
                // batch): their park timeout bounds re-check latency to
                // `IDLE_PARK`.
                if injector.len() > batch_size {
                    self.shared.job_ready.notify_one();
                }
            },
        );

        // Master helping (caller-runs): drain the injector on this thread
        // with the persistent scratch. Small jobs complete right here while
        // the woken workers assist; the guard then only waits for workers
        // that actually activated.
        let mut local = 0u64;
        loop {
            let task = match scratch.deque.pop() {
                Some(task) => task,
                None => match injector.steal_batch_and_pop(&scratch.deque) {
                    Steal::Success(task) => task,
                    Steal::Empty => break,
                    Steal::Retry => continue,
                },
            };
            local += match mode {
                CountMode::Enumerate => {
                    interp::count_from_prefix_with(plan, ctx, task.as_slice(), &mut scratch.buffers)
                }
                CountMode::Iep => iep::iep_term_with(plan, ctx, task.as_slice(), &mut scratch.iep),
            };
        }
        total.fetch_add(local, Ordering::Relaxed);

        drop(guard); // waits for the activated workers, then clears the job

        if lock_state(&self.shared).panicked {
            panic!("a pool worker panicked while executing this query");
        }
        parallel::finalize_count(total.load(Ordering::Relaxed), mode, plan)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = lock_state(&self.shared);
            state.shutdown = true;
            self.shared.job_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Completes a job: blocks until every activated worker has retired, then
/// clears the job slot (so late-waking workers skip the epoch instead of
/// dereferencing dead pointers). Runs on drop so that even a panicking
/// master cannot unwind past stack data the workers still reference.
struct JobGuard<'a> {
    shared: &'a Shared,
    producer_done: &'a AtomicBool,
    unparkers: &'a [Unparker],
    injector: &'a Injector<PrefixTask>,
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        // Normal path: the master already set `producer_done` and drained
        // the injector. On unwind neither holds, so finish both here —
        // unprocessed tasks are discarded (the count is unwinding anyway)
        // to guarantee the workers' retire condition becomes true.
        self.producer_done.store(true, Ordering::Release);
        loop {
            match self.injector.steal() {
                Steal::Success(_) => {}
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        for unparker in self.unparkers {
            unparker.unpark();
        }
        let mut state = lock_state(self.shared);
        while state.active > 0 {
            state = self
                .shared
                .job_done
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        state.job = None;
    }
}

/// The persistent worker body: wait for a job epoch, activate, run the
/// shared `parallel::process_tasks` loop with scratch that survives
/// across jobs, retire, repeat. Workers that sleep through a short job
/// simply skip its epoch.
fn worker_thread(
    shared: Arc<Shared>,
    me: usize,
    deque: Worker<PrefixTask>,
    stealers: Arc<Vec<Stealer<PrefixTask>>>,
    parker: Parker,
) {
    // The scratch that makes the warm path allocation-free: created once
    // per worker and reused for every job the pool ever runs.
    let mut buffers = SearchBuffers::new(MAX_LOOPS);
    let mut iep_scratch = IepScratch::new();
    let mut last_epoch = 0u64;

    loop {
        let job = {
            let mut state = lock_state(&shared);
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch > last_epoch {
                    last_epoch = state.epoch;
                    if let Some(job) = state.job {
                        state.active += 1;
                        break job;
                    }
                    // The job already completed before this worker woke:
                    // skip the epoch and keep waiting.
                }
                state = shared
                    .job_ready
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };

        // Retire even if the counting code below panics: without this a
        // worker panic would leave `active` elevated forever and deadlock
        // the submitter (and every later query) in `JobGuard`. The drop
        // also records the panic so the submitter can re-raise it, and
        // drains this worker's deque so stale tasks cannot be stolen by
        // live workers during a later job.
        let retire = RetireGuard {
            shared: &shared,
            deque: &deque,
        };

        // SAFETY: this worker activated (incremented `active`) while the
        // job was posted; `count_in` keeps every pointer in `job` alive
        // until `active` returns to zero (enforced by `JobGuard`).
        let local = unsafe {
            let plan = &*job.plan;
            let ctx = if job.hubs.is_null() {
                ExecCtx::new(&*job.graph)
            } else {
                ExecCtx::with_hubs(&*job.hubs)
            };
            parallel::process_tasks(
                plan,
                ctx,
                job.mode,
                &deque,
                me,
                &stealers,
                &*job.injector,
                &*job.producer_done,
                &mut buffers,
                &mut iep_scratch,
                || parker.park_timeout(IDLE_PARK),
            )
        };
        // SAFETY: same lifetime argument; the add happens before retiring.
        unsafe {
            (*job.total).fetch_add(local, Ordering::Relaxed);
        }

        drop(retire);
    }
}

/// Decrements `active` (and wakes the submitter when it reaches zero) even
/// on unwind, recording whether the worker retired by panicking and
/// discarding any tasks the unwound worker still held (they belong to the
/// failed job; leaking them to a later job's stealers would corrupt its
/// count).
struct RetireGuard<'a> {
    shared: &'a Shared,
    deque: &'a Worker<PrefixTask>,
}

impl Drop for RetireGuard<'_> {
    fn drop(&mut self) {
        // Only ever non-empty when unwinding (normal retirement implies
        // the worker drained its deque), but draining unconditionally is a
        // single cheap None pop.
        while self.deque.pop().is_some() {}
        let mut state = lock_state(self.shared);
        if std::thread::panicking() {
            state.panicked = true;
        }
        state.active -= 1;
        if state.active == 0 {
            self.shared.job_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;
    use crate::exec::{interp, parallel::count_parallel};
    use crate::schedule::efficient_schedules;
    use graphpi_graph::generators;
    use graphpi_pattern::prefab;
    use graphpi_pattern::restriction::{generate_restriction_sets, GenerationOptions};

    fn plan_for(pattern: graphpi_pattern::Pattern) -> ExecutionPlan {
        let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
        let schedules = efficient_schedules(&pattern);
        Configuration::new(pattern, schedules[0].clone(), sets[0].clone()).compile()
    }

    #[test]
    fn pool_matches_scoped_execution() {
        let g = generators::power_law(200, 5, 9);
        let pool = WorkerPool::new(3);
        for (name, pattern) in prefab::evaluation_patterns().into_iter().take(3) {
            let plan = plan_for(pattern);
            for mode in [CountMode::Enumerate, CountMode::Iep] {
                let options = ParallelOptions {
                    threads: 3,
                    mode,
                    ..Default::default()
                };
                assert_eq!(
                    pool.count(&plan, &g, &options),
                    count_parallel(&plan, &g, options),
                    "{name} ({mode:?})"
                );
            }
        }
    }

    #[test]
    fn pool_reuses_workers_across_many_jobs() {
        let g = generators::power_law(150, 5, 4);
        let pool = WorkerPool::new(2);
        let plan = plan_for(prefab::house());
        let expected = interp::count_embeddings(&plan, &g);
        for _ in 0..25 {
            assert_eq!(pool.count(&plan, &g, &ParallelOptions::default()), expected);
        }
    }

    #[test]
    fn pool_alternates_between_plans_and_graphs() {
        let g1 = generators::power_law(150, 5, 1);
        let g2 = generators::erdos_renyi(120, 700, 2);
        let house = plan_for(prefab::house());
        let tri = plan_for(prefab::triangle());
        let pool = WorkerPool::new(2);
        let options = ParallelOptions::default();
        for _ in 0..5 {
            assert_eq!(
                pool.count(&house, &g1, &options),
                interp::count_embeddings(&house, &g1)
            );
            assert_eq!(
                pool.count(&tri, &g2, &options),
                interp::count_embeddings(&tri, &g2)
            );
        }
    }

    #[test]
    fn single_worker_pool_works() {
        let g = generators::power_law(150, 5, 17);
        let pool = WorkerPool::new(1);
        let plan = plan_for(prefab::rectangle());
        assert_eq!(
            pool.count(&plan, &g, &ParallelOptions::default()),
            interp::count_embeddings(&plan, &g)
        );
    }

    #[test]
    fn pool_handles_degenerate_paths() {
        let pool = WorkerPool::new(2);
        // Empty graph.
        let g = graphpi_graph::GraphBuilder::new().num_vertices(40).build();
        let plan = plan_for(prefab::house());
        assert_eq!(pool.count(&plan, &g, &ParallelOptions::default()), 0);
        // Full-depth prefixes (master-only path).
        let g = generators::erdos_renyi(60, 250, 3);
        let edge_plan = plan_for(graphpi_pattern::Pattern::new(2, &[(0, 1)]));
        let options = ParallelOptions {
            prefix_depth: Some(2),
            ..Default::default()
        };
        assert_eq!(
            pool.count(&edge_plan, &g, &options),
            interp::count_embeddings(&edge_plan, &g)
        );
    }

    #[test]
    fn pool_with_prebuilt_hubs_matches_plain() {
        let g = generators::power_law(180, 6, 23);
        let hubs = HubGraph::build(&g, HubOptions::default());
        let pool = WorkerPool::new(2);
        let plan = plan_for(prefab::house());
        let options = ParallelOptions::default();
        assert_eq!(
            pool.count_with_hubs(&plan, &hubs, &options),
            pool.count(&plan, &g, &options)
        );
    }

    #[test]
    fn dropping_an_idle_pool_joins_cleanly() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        drop(pool); // must not hang
    }

    #[test]
    fn concurrent_submitters_serialize_correctly() {
        let g = generators::power_law(150, 5, 31);
        let pool = WorkerPool::new(2);
        let plan = plan_for(prefab::house());
        let expected = interp::count_embeddings(&plan, &g);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let pool = &pool;
                let plan = &plan;
                let g = &g;
                scope.spawn(move || {
                    for _ in 0..5 {
                        assert_eq!(pool.count(plan, g, &ParallelOptions::default()), expected);
                    }
                });
            }
        });
    }

    #[test]
    fn panicking_query_does_not_brick_the_pool() {
        let g = generators::power_law(120, 5, 3);
        let pool = WorkerPool::new(2);
        let good = plan_for(prefab::house());
        let expected = interp::count_embeddings(&good, &g);
        // Corrupt a plan so task processing indexes out of bounds: loop 1
        // claims a parent at position 3, but only one vertex is bound.
        let mut bad = plan_for(graphpi_pattern::Pattern::new(2, &[(0, 1)]));
        bad.loops[1].parents = vec![3];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.count(&bad, &g, &ParallelOptions::default())
        }));
        assert!(result.is_err(), "corrupted plan must panic");
        // The pool must remain fully usable afterwards.
        for _ in 0..3 {
            assert_eq!(pool.count(&good, &g, &ParallelOptions::default()), expected);
        }
    }

    #[test]
    fn pool_iep_unrestricted_fallback_matches_sequential() {
        use crate::schedule::Schedule;
        use graphpi_pattern::restriction::RestrictionSet;
        let g = generators::erdos_renyi(100, 500, 5);
        let pattern = prefab::path_pattern(5);
        let schedule = Schedule::new(&pattern, vec![2, 1, 3, 0, 4]);
        let restrictions = RestrictionSet::from_pairs(&[(2, 1)]);
        let plan = Configuration::new(pattern, schedule, restrictions).compile();
        let pool = WorkerPool::new(2);
        let options = ParallelOptions {
            mode: CountMode::Iep,
            ..Default::default()
        };
        assert_eq!(
            pool.count(&plan, &g, &options),
            crate::exec::iep::count_embeddings_iep(&plan, &g)
        );
    }
}
