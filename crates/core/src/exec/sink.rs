//! Match sinks: what the execution core *does* with each embedding.
//!
//! The matching kernel used to hard-code `count += 1`; every executor was a
//! counter and nothing else. [`MatchSink`] turns the kernel into a pipeline
//! stage: the recursive matcher ([`crate::exec::interp`]) drives a sink once
//! per embedding, and the sink decides whether to tally, record, profile or
//! sample it. Counting becomes one mode among several:
//!
//! * [`CountSink`] — the classic global count. Monomorphised into the same
//!   machine code as the old closure-based counter, so the count path stays
//!   bit-identical and benchmark-neutral.
//! * [`EmbedSink`] — records full vertex tuples (enumeration), bounded by a
//!   limit so paged/streaming consumers can stop early.
//! * [`OrbitSink`] — per-vertex participation counts (local motif
//!   profiles): `counts[v]` is the number of embeddings containing `v`.
//! * [`SampleSink`] — seeded uniform prefix-sampling with a
//!   Horvitz–Thompson estimate and standard error, for approximate counts
//!   at interactive latency.
//!
//! The parallel executors do not share one sink across workers; each worker
//! accumulates locally and merges into a [`ModeShared`] (the job-level
//! shared state) under brief, per-task synchronisation. IEP never applies
//! to sink modes — a sink observes *individual* embeddings, which is
//! exactly what IEP avoids materialising — so mode plans are compiled with
//! IEP disabled at the planner
//! ([`crate::engine::PlanOptions::enable_iep`]).

use graphpi_graph::csr::VertexId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A consumer of matched embeddings.
///
/// The matcher calls [`MatchSink::on_match`] once per embedding with the
/// bound data vertices in **schedule order** (`embedding[i]` is the vertex
/// chosen by loop `i`). Sinks that can saturate (e.g. a limit) return `true`
/// from [`MatchSink::is_full`] to stop the search early.
pub trait MatchSink {
    /// Consumes one embedding (bound vertices in schedule order).
    fn on_match(&mut self, embedding: &[VertexId]);

    /// Task-level admission: called once per search prefix before the
    /// subtree below it is explored; returning `false` skips the subtree
    /// entirely. The default admits everything; [`SampleSink`] implements
    /// its sampling decision here.
    fn accept_prefix(&mut self, _prefix: &[VertexId]) -> bool {
        true
    }

    /// `true` once the sink wants no further embeddings (the matcher stops
    /// at the next opportunity). The default never saturates.
    fn is_full(&self) -> bool {
        false
    }
}

/// The zero-overhead counting sink: `on_match` is `count += 1`, exactly the
/// closure the pre-sink kernel inlined, so counting through the sink
/// pipeline monomorphises to the same hot loop.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountSink {
    count: u64,
}

impl CountSink {
    /// A fresh zero-count sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of embeddings consumed.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl MatchSink for CountSink {
    #[inline(always)]
    fn on_match(&mut self, _embedding: &[VertexId]) {
        self.count += 1;
    }
}

/// Records full embeddings (flattened, fixed arity) up to a limit.
#[derive(Debug)]
pub struct EmbedSink {
    arity: usize,
    limit: u64,
    recorded: u64,
    /// Flat storage: embedding `e` occupies `buf[e*arity .. (e+1)*arity]`,
    /// vertices in schedule order.
    buf: Vec<VertexId>,
}

impl EmbedSink {
    /// A sink recording at most `limit` embeddings of `arity` vertices.
    pub fn new(arity: usize, limit: u64) -> Self {
        Self {
            arity,
            limit,
            recorded: 0,
            buf: Vec::new(),
        }
    }

    /// Number of embeddings recorded so far.
    pub fn len(&self) -> u64 {
        self.recorded
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.recorded == 0
    }

    /// The flat schedule-order buffer (`len() * arity` vertices).
    pub fn vertices(&self) -> &[VertexId] {
        &self.buf
    }

    /// Consumes the sink, returning one `Vec` per embedding.
    pub fn into_embeddings(self) -> Vec<Vec<VertexId>> {
        self.buf.chunks(self.arity.max(1)).map(<[_]>::to_vec).collect()
    }
}

impl MatchSink for EmbedSink {
    #[inline]
    fn on_match(&mut self, embedding: &[VertexId]) {
        if self.recorded < self.limit {
            debug_assert_eq!(embedding.len(), self.arity);
            self.buf.extend_from_slice(embedding);
            self.recorded += 1;
        }
    }

    #[inline]
    fn is_full(&self) -> bool {
        self.recorded >= self.limit
    }
}

/// Accumulates per-vertex participation counts: `counts()[v]` is the number
/// of (restriction-deduplicated) embeddings that contain data vertex `v`.
/// Summing over all vertices yields `pattern_size × global_count`.
#[derive(Debug)]
pub struct OrbitSink {
    counts: Vec<u64>,
}

impl OrbitSink {
    /// A sink over a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            counts: vec![0; num_vertices],
        }
    }

    /// The per-vertex counts, indexed by data vertex id.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Consumes the sink, returning the per-vertex counts.
    pub fn into_counts(self) -> Vec<u64> {
        self.counts
    }
}

impl MatchSink for OrbitSink {
    #[inline]
    fn on_match(&mut self, embedding: &[VertexId]) {
        for &v in embedding {
            self.counts[v as usize] += 1;
        }
    }
}

/// Deterministic 64-bit FNV-1a over the sampling seed and a vertex prefix.
/// The hash depends only on `(seed, prefix)` — not on thread count, task
/// order or batch size — which is what makes sampled estimates reproducible
/// across every execution configuration.
#[inline]
pub fn prefix_hash(seed: u64, prefix: &[VertexId]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h = OFFSET;
    for byte in seed.to_le_bytes() {
        h = (h ^ byte as u64).wrapping_mul(PRIME);
    }
    for &v in prefix {
        for byte in v.to_le_bytes() {
            h = (h ^ byte as u64).wrapping_mul(PRIME);
        }
    }
    // Finalizer (murmur3 fmix64). Raw FNV-1a has almost no avalanche into
    // the high bits for short inputs, so without this the top-53-bit
    // uniforms of nearby prefixes are nearly equal and the per-task
    // Bernoulli decisions accept or reject en masse instead of
    // independently — wrecking the sampling estimator's variance.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// The Bernoulli inclusion decision for one prefix at sampling rate `rate`
/// (accept with probability `rate`, independently per prefix, deterministic
/// in `(seed, prefix)`). A rate of 1.0 (or more) accepts everything, so the
/// estimate degrades gracefully to the exact count.
#[inline]
pub fn sample_accepts(seed: u64, rate: f64, prefix: &[VertexId]) -> bool {
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    // Top 53 bits → a uniform f64 in [0, 1).
    let u = (prefix_hash(seed, prefix) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    u < rate
}

/// Accumulated sampling statistics: the sufficient statistics of the
/// Horvitz–Thompson estimator over Bernoulli-sampled prefix subtrees.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SampleAccum {
    /// Prefix subtrees whose sampling decision accepted them.
    pub sampled: u64,
    /// All prefix subtrees offered to the sampler.
    pub total: u64,
    /// Sum of the per-subtree embedding counts over the accepted subtrees.
    pub sum_y: u128,
    /// Sum of squared per-subtree counts over the accepted subtrees.
    pub sum_y2: u128,
}

impl SampleAccum {
    /// Folds another accumulator into this one (merge of per-worker parts).
    pub fn merge(&mut self, other: &SampleAccum) {
        self.sampled += other.sampled;
        self.total += other.total;
        self.sum_y += other.sum_y;
        self.sum_y2 += other.sum_y2;
    }

    /// Records one sampled subtree with `y` embeddings.
    pub fn record(&mut self, y: u64) {
        self.sampled += 1;
        self.sum_y += y as u128;
        self.sum_y2 += (y as u128) * (y as u128);
    }

    /// The Horvitz–Thompson estimate and its standard error at inclusion
    /// probability `rate`. With `rate >= 1` every subtree was counted, so
    /// the estimate is the exact total and the error is zero.
    pub fn estimate(&self, rate: f64) -> SampleEstimate {
        if rate >= 1.0 {
            return SampleEstimate {
                estimate: self.sum_y as f64,
                stderr: 0.0,
                sampled: self.sampled,
                total: self.total,
            };
        }
        let p = rate.max(f64::MIN_POSITIVE);
        // τ̂ = Σ_{i ∈ S} y_i / p;  Var̂(τ̂) = Σ_{i ∈ S} y_i² (1 − p) / p².
        let estimate = self.sum_y as f64 / p;
        let variance = self.sum_y2 as f64 * (1.0 - p) / (p * p);
        SampleEstimate {
            estimate,
            stderr: variance.max(0.0).sqrt(),
            sampled: self.sampled,
            total: self.total,
        }
    }
}

/// An approximate count with its uncertainty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleEstimate {
    /// The Horvitz–Thompson estimate of the exact embedding count.
    pub estimate: f64,
    /// One standard error of the estimate (0 when the rate was 1).
    pub stderr: f64,
    /// Number of prefix subtrees actually counted.
    pub sampled: u64,
    /// Number of prefix subtrees considered.
    pub total: u64,
}

/// A sequential sampling sink: admits whole prefix subtrees with
/// probability `rate` (decided in [`MatchSink::accept_prefix`]) and counts
/// the embeddings of the admitted ones. The parallel executors make the
/// same `(seed, prefix)` decision per task instead — identical statistics,
/// since a task *is* a prefix subtree.
#[derive(Debug)]
pub struct SampleSink {
    seed: u64,
    rate: f64,
    /// Count inside the currently admitted subtree (folded into the
    /// accumulator at the next subtree boundary).
    current: u64,
    /// An admitted subtree is open and must be flushed.
    pending: bool,
    accum: SampleAccum,
}

impl SampleSink {
    /// A sink sampling prefixes at `rate` under `seed`.
    pub fn new(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            rate,
            current: 0,
            pending: false,
            accum: SampleAccum::default(),
        }
    }

    /// Finishes the current subtree (if any) and returns the accumulated
    /// statistics.
    pub fn finish(mut self) -> SampleAccum {
        self.flush();
        self.accum
    }

    fn flush(&mut self) {
        if self.pending {
            self.accum.record(self.current);
            self.current = 0;
            self.pending = false;
        }
    }
}

impl MatchSink for SampleSink {
    #[inline]
    fn on_match(&mut self, _embedding: &[VertexId]) {
        self.current += 1;
    }

    fn accept_prefix(&mut self, prefix: &[VertexId]) -> bool {
        self.flush();
        self.accum.total += 1;
        if sample_accepts(self.seed, self.rate, prefix) {
            self.pending = true;
            true
        } else {
            false
        }
    }
}

/// Job-level shared state of a mode execution: what per-worker local
/// accumulation merges into. One instance lives on the submitting thread's
/// stack for the duration of the job, referenced by the pool's job slot
/// under the same validity protocol as the plan and graph pointers.
#[derive(Debug)]
pub(crate) enum ModeShared {
    /// Enumeration: a global budget (`claimed`) bounds the recorded
    /// embeddings at `limit`; workers append whole local pages under the
    /// mutex.
    Enumerate {
        /// Maximum embeddings to record.
        limit: u64,
        /// Embeddings claimed so far (may overshoot `limit` by in-flight
        /// claims; only claims `< limit` record).
        claimed: AtomicU64,
        /// Flat schedule-order output, `arity` vertices per embedding.
        out: Mutex<Vec<VertexId>>,
    },
    /// Per-vertex counts, merged with relaxed atomic adds (order-free sum).
    Orbit {
        /// `counts[v]` accumulates embeddings containing vertex `v` (ids in
        /// execution-context space; hub relabeling is undone at finalize).
        counts: Vec<AtomicU64>,
    },
    /// Sampled counting: per-task decisions, statistics merged under the
    /// mutex.
    Sample {
        /// The sampling seed.
        seed: u64,
        /// Bernoulli inclusion probability per prefix subtree.
        rate: f64,
        /// Merged sufficient statistics.
        accum: Mutex<SampleAccum>,
    },
}

impl ModeShared {
    pub(crate) fn enumerate(limit: u64) -> Self {
        ModeShared::Enumerate {
            limit,
            claimed: AtomicU64::new(0),
            out: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn orbit(num_vertices: usize) -> Self {
        ModeShared::Orbit {
            counts: (0..num_vertices).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub(crate) fn sample(seed: u64, rate: f64) -> Self {
        ModeShared::Sample {
            seed,
            rate,
            accum: Mutex::new(SampleAccum::default()),
        }
    }

    /// For enumeration: `true` once the budget is exhausted (workers skip
    /// remaining tasks cheaply).
    pub(crate) fn enumeration_full(&self) -> bool {
        match self {
            ModeShared::Enumerate { limit, claimed, .. } => {
                claimed.load(Ordering::Relaxed) >= *limit
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sink_counts() {
        let mut sink = CountSink::new();
        sink.on_match(&[1, 2, 3]);
        sink.on_match(&[4, 5, 6]);
        assert_eq!(sink.count(), 2);
        assert!(!sink.is_full());
    }

    #[test]
    fn embed_sink_respects_limit() {
        let mut sink = EmbedSink::new(2, 2);
        sink.on_match(&[1, 2]);
        assert!(!sink.is_full());
        sink.on_match(&[3, 4]);
        assert!(sink.is_full());
        sink.on_match(&[5, 6]); // ignored: full
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.into_embeddings(), vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn orbit_sink_accumulates_membership() {
        let mut sink = OrbitSink::new(5);
        sink.on_match(&[0, 2, 4]);
        sink.on_match(&[2, 3, 4]);
        assert_eq!(sink.counts(), &[1, 0, 2, 1, 2]);
    }

    #[test]
    fn prefix_hash_is_deterministic_and_seed_sensitive() {
        let a = prefix_hash(7, &[1, 2, 3]);
        assert_eq!(a, prefix_hash(7, &[1, 2, 3]));
        assert_ne!(a, prefix_hash(8, &[1, 2, 3]));
        assert_ne!(a, prefix_hash(7, &[1, 2, 4]));
    }

    #[test]
    fn rate_one_accepts_everything_and_is_exact() {
        for v in 0..100u32 {
            assert!(sample_accepts(3, 1.0, &[v]));
        }
        let mut accum = SampleAccum::default();
        accum.total = 10;
        for y in [5u64, 0, 7, 3, 1, 0, 0, 2, 9, 4] {
            accum.record(y);
        }
        let est = accum.estimate(1.0);
        assert_eq!(est.estimate, 31.0);
        assert_eq!(est.stderr, 0.0);
        assert_eq!(est.sampled, 10);
    }

    #[test]
    fn acceptance_frequency_tracks_rate() {
        let accepted = (0..10_000u32)
            .filter(|&v| sample_accepts(42, 0.25, &[v]))
            .count();
        let frequency = accepted as f64 / 10_000.0;
        assert!(
            (frequency - 0.25).abs() < 0.02,
            "acceptance frequency {frequency} far from rate"
        );
    }

    #[test]
    fn horvitz_thompson_is_unbiased_in_expectation() {
        // Ground truth: subtree sizes y_i; estimate averaged over many
        // seeds must approach the true total.
        let ys: Vec<u64> = (0..200).map(|i| (i * 7 + 3) % 23).collect();
        let total: u64 = ys.iter().sum();
        let rate = 0.3;
        let mut mean = 0.0;
        let seeds = 200;
        for seed in 0..seeds {
            let mut accum = SampleAccum::default();
            for (i, &y) in ys.iter().enumerate() {
                accum.total += 1;
                if sample_accepts(seed, rate, &[i as VertexId]) {
                    accum.record(y);
                }
            }
            mean += accum.estimate(rate).estimate;
        }
        mean /= seeds as f64;
        let relative = (mean - total as f64).abs() / total as f64;
        assert!(relative < 0.05, "relative bias {relative} too large");
    }

    #[test]
    fn sample_accum_merge_adds_fields() {
        let mut a = SampleAccum {
            sampled: 1,
            total: 2,
            sum_y: 3,
            sum_y2: 9,
        };
        let b = SampleAccum {
            sampled: 2,
            total: 5,
            sum_y: 4,
            sum_y2: 16,
        };
        a.merge(&b);
        assert_eq!(
            a,
            SampleAccum {
                sampled: 3,
                total: 7,
                sum_y: 7,
                sum_y2: 25,
            }
        );
    }

    #[test]
    fn mode_shared_enumeration_budget() {
        let shared = ModeShared::enumerate(2);
        assert!(!shared.enumeration_full());
        if let ModeShared::Enumerate { claimed, .. } = &shared {
            claimed.store(2, Ordering::Relaxed);
        }
        assert!(shared.enumeration_full());
        assert!(!ModeShared::orbit(4).enumeration_full());
    }
}
