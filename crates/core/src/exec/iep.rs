//! Embedding counting with the Inclusion-Exclusion Principle
//! (Section IV-D and Algorithm 2 of the paper).
//!
//! When only the *number* of embeddings is needed and the last `k` scheduled
//! pattern vertices are pairwise non-adjacent, the innermost `k` loops never
//! perform intersections — they only enumerate. Instead of enumerating,
//! GraphPi computes, for every binding of the outer `n - k` loops, the
//! number of ways to choose `k` pairwise-distinct vertices
//! `(e_1, …, e_k)` with `e_i ∈ S_i`, where `S_i` is the candidate set of the
//! `i`-th suffix vertex. That number is obtained by inclusion–exclusion over
//! the "some pair equal" events; each term factors over the connected
//! components of the equality-pair graph (Algorithm 2) into a product of
//! intersection cardinalities.
//!
//! Restrictions enforced in the suffix loops are dropped by this
//! transformation, so the grand total over-counts by the number of pattern
//! automorphisms the *remaining* restrictions fail to eliminate; the final
//! count is divided by that factor (`ExecutionPlan::iep_redundancy`).
//!
//! Like the enumeration kernel, the per-prefix IEP term is allocation-free
//! in steady state: the parallel executor keeps one [`IepScratch`] per
//! worker and calls [`iep_term_with`] per task, with all candidate sets,
//! intermediates, and the inclusion–exclusion bookkeeping living in reused
//! buffers or on the stack.

use crate::config::{Configuration, ExecutionPlan, IepCorrection, MAX_LOOPS};
use crate::exec::interp::{self, ExecCtx};
use graphpi_graph::csr::{CsrGraph, VertexId};
use graphpi_graph::hub::HubGraph;
use graphpi_pattern::restriction::RestrictionSet;

/// Largest IEP suffix supported (bounded by `2^(k(k-1)/2)` inclusion–
/// exclusion terms; 6 keeps the term count at 2^15).
pub const MAX_IEP_SUFFIX: usize = 6;

/// Reusable scratch for [`iep_term_with`]: the per-suffix-vertex candidate
/// sets plus the intersection buffers. Create once per worker and reuse
/// across tasks.
#[derive(Debug, Default)]
pub struct IepScratch {
    /// Candidate set of each suffix vertex.
    sets: Vec<Vec<VertexId>>,
    /// Materialisation buffer for subset intersections.
    inter: Vec<VertexId>,
    /// Ping-pong scratch for k-way intersections.
    tmp: Vec<VertexId>,
    /// Bitset scratch for all-hub intersections.
    words: Vec<u64>,
}

impl IepScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, k: usize) {
        if self.sets.len() < k {
            self.sets.resize_with(k, Vec::new);
        }
    }
}

/// Counts embeddings using IEP over the innermost `plan.iep_suffix_len`
/// loops. Falls back to plain enumeration when the suffix is shorter than 2
/// (there is nothing to gain) or when the plan has a single loop.
pub fn count_embeddings_iep(plan: &ExecutionPlan, graph: &CsrGraph) -> u64 {
    count_embeddings_iep_in(plan, ExecCtx::new(graph))
}

/// Hub-accelerated variant of [`count_embeddings_iep`]; returns the same
/// count as the plain path on the original graph.
pub fn count_embeddings_iep_hub(plan: &ExecutionPlan, hubs: &HubGraph) -> u64 {
    count_embeddings_iep_in(plan, ExecCtx::with_hubs(hubs))
}

/// Context-explicit IEP driver.
pub fn count_embeddings_iep_in(plan: &ExecutionPlan, ctx: ExecCtx<'_>) -> u64 {
    let k = plan.iep_suffix_len;
    let n = plan.num_loops();
    if k < 2 || n <= k {
        return interp::count_embeddings_in(plan, ctx);
    }
    // When the plan's outer restrictions do not over-count every subgraph by
    // the same factor, run IEP on a restriction-free clone of the plan (see
    // `IepCorrection`).
    let unrestricted_plan;
    let (effective_plan, divisor) = match plan.iep_correction {
        IepCorrection::DividePrefixRestricted { divisor } => (plan, divisor),
        IepCorrection::DivideUnrestricted { divisor } => {
            unrestricted_plan = Configuration::new(
                plan.config.pattern.clone(),
                plan.config.schedule.clone(),
                RestrictionSet::empty(),
            )
            .compile();
            (&unrestricted_plan, divisor)
        }
    };
    let outer_depth = n - k;
    let mut scratch = IepScratch::new();
    let mut total: u64 = 0;
    interp::for_each_prefix(effective_plan, ctx, outer_depth, |prefix| {
        total += iep_term_with(effective_plan, ctx, prefix, &mut scratch);
    });
    debug_assert!(divisor >= 1);
    total / divisor
}

/// Counts embeddings (before dividing by the redundancy factor) contributed
/// by a single outer-loop prefix. Exposed for the parallel executor.
///
/// Allocates fresh scratch; hot loops should hold an [`IepScratch`] and
/// call [`iep_term_with`] instead.
pub fn iep_term(plan: &ExecutionPlan, graph: &CsrGraph, prefix: &[VertexId]) -> u64 {
    let mut scratch = IepScratch::new();
    iep_term_with(plan, ExecCtx::new(graph), prefix, &mut scratch)
}

/// Allocation-free variant of [`iep_term`]: reuses the caller's
/// [`IepScratch`] and supports hub acceleration through the context.
pub fn iep_term_with(
    plan: &ExecutionPlan,
    ctx: ExecCtx<'_>,
    prefix: &[VertexId],
    scratch: &mut IepScratch,
) -> u64 {
    let n = plan.num_loops();
    let k = n - prefix.len();
    debug_assert!(k >= 1);
    scratch.ensure(k);

    // Candidate set of each suffix vertex: intersection of the neighborhoods
    // of its bound pattern neighbors, minus the already bound vertices.
    for (idx, depth) in (prefix.len()..n).enumerate() {
        let loop_plan = &plan.loops[depth];
        let set = &mut scratch.sets[idx];
        if loop_plan.parents.is_empty() {
            set.clear();
            set.extend(ctx.graph().vertices());
        } else {
            let mut verts = [0 as VertexId; MAX_LOOPS];
            for (slot, &p) in verts.iter_mut().zip(&loop_plan.parents) {
                *slot = prefix[p];
            }
            interp::intersect_neighborhoods_into(
                ctx,
                &verts[..loop_plan.parents.len()],
                set,
                &mut scratch.tmp,
                &mut scratch.words,
            );
        }
        // In-place subtraction of the bound prefix (tiny exclusion list).
        set.retain(|v| !prefix.contains(v));
    }
    count_distinct_tuples_with(&scratch.sets[..k], &mut scratch.inter, &mut scratch.tmp)
}

/// Number of ordered tuples `(e_1, …, e_k)` with `e_i ∈ sets[i]` and all
/// entries pairwise distinct, computed by inclusion–exclusion over equality
/// pairs with the per-component factorisation of Algorithm 2.
pub fn count_distinct_tuples(sets: &[Vec<VertexId>]) -> u64 {
    let mut inter = Vec::new();
    let mut tmp = Vec::new();
    count_distinct_tuples_with(sets, &mut inter, &mut tmp)
}

/// Buffer-reusing core of [`count_distinct_tuples`]: all bookkeeping
/// (subset cardinalities, equality pairs, union–find) lives on the stack;
/// only the subset intersections touch the two scratch buffers.
pub fn count_distinct_tuples_with(
    sets: &[Vec<VertexId>],
    inter: &mut Vec<VertexId>,
    tmp: &mut Vec<VertexId>,
) -> u64 {
    let k = sets.len();
    assert!(k >= 1, "need at least one candidate set");
    assert!(
        k <= MAX_IEP_SUFFIX,
        "IEP suffix larger than {MAX_IEP_SUFFIX} is not supported"
    );
    if k == 1 {
        return sets[0].len() as u64;
    }

    // Cardinality of the intersection of every subset of the candidate
    // sets, indexed by bitmask (2^k <= 64 entries, on the stack).
    let mut subset_card = [0i64; 1 << MAX_IEP_SUFFIX];
    for mask in 1usize..(1 << k) {
        if mask.count_ones() == 1 {
            subset_card[mask] = sets[mask.trailing_zeros() as usize].len() as i64;
        } else {
            let mut slices: [&[VertexId]; MAX_IEP_SUFFIX] = [&[]; MAX_IEP_SUFFIX];
            let mut m = 0usize;
            for (i, set) in sets.iter().enumerate().take(k) {
                if mask & (1 << i) != 0 {
                    slices[m] = set.as_slice();
                    m += 1;
                }
            }
            graphpi_graph::vertex_set::intersect_many_into(&slices[..m], inter, tmp);
            subset_card[mask] = inter.len() as i64;
        }
    }

    // All unordered pairs (i, j), i < j.
    let mut pairs = [(0usize, 0usize); MAX_IEP_SUFFIX * (MAX_IEP_SUFFIX - 1) / 2];
    let mut num_pairs = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            pairs[num_pairs] = (i, j);
            num_pairs += 1;
        }
    }

    let mut total: i64 = 0;
    for pair_mask in 0usize..(1 << num_pairs) {
        let sign = if pair_mask.count_ones() % 2 == 0 {
            1i64
        } else {
            -1i64
        };
        // Algorithm 2: union-find the suffix vertices along the selected
        // equality pairs, then multiply the intersection cardinalities of
        // the resulting components.
        let mut parent = [0usize; MAX_IEP_SUFFIX];
        for (i, slot) in parent.iter_mut().enumerate().take(k) {
            *slot = i;
        }
        for (bit, &(i, j)) in pairs[..num_pairs].iter().enumerate() {
            if pair_mask & (1 << bit) != 0 {
                union(&mut parent, i, j);
            }
        }
        let mut component_mask = [0usize; MAX_IEP_SUFFIX];
        for v in 0..k {
            component_mask[find(&mut parent, v)] |= 1 << v;
        }
        let mut product: i64 = 1;
        for v in 0..k {
            if find(&mut parent, v) == v {
                product = product.saturating_mul(subset_card[component_mask[v]]);
                if product == 0 {
                    break;
                }
            }
        }
        total += sign * product;
    }
    total.max(0) as u64
}

fn find(parent: &mut [usize], x: usize) -> usize {
    if parent[x] != x {
        let root = find(parent, parent[x]);
        parent[x] = root;
    }
    parent[x]
}

fn union(parent: &mut [usize], a: usize, b: usize) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra != rb {
        parent[ra] = rb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;
    use crate::schedule::{efficient_schedules, Schedule};
    use graphpi_graph::generators;
    use graphpi_graph::hub::{HubGraph, HubOptions};
    use graphpi_pattern::prefab;
    use graphpi_pattern::restriction::{
        generate_restriction_sets, GenerationOptions, RestrictionSet,
    };

    #[test]
    fn distinct_tuple_counting_small_cases() {
        // Two disjoint sets: all pairs are distinct.
        assert_eq!(count_distinct_tuples(&[vec![1, 2], vec![3, 4]]), 4);
        // Identical sets of size 3: ordered pairs with distinct entries = 6.
        assert_eq!(count_distinct_tuples(&[vec![1, 2, 3], vec![1, 2, 3]]), 6);
        // Three identical sets of size 3: 3! = 6.
        assert_eq!(
            count_distinct_tuples(&[vec![1, 2, 3], vec![1, 2, 3], vec![1, 2, 3]]),
            6
        );
        // A singleton repeated twice cannot produce distinct entries.
        assert_eq!(count_distinct_tuples(&[vec![7], vec![7]]), 0);
        // Single set: its size.
        assert_eq!(count_distinct_tuples(&[vec![1, 2, 3, 4]]), 4);
        // Empty set anywhere: zero.
        assert_eq!(count_distinct_tuples(&[vec![], vec![1, 2]]), 0);
    }

    #[test]
    fn distinct_tuple_counting_matches_bruteforce() {
        // Randomised cross-check against explicit enumeration.
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let k = rng.gen_range(2..=4usize);
            let sets: Vec<Vec<VertexId>> = (0..k)
                .map(|_| {
                    let mut s: Vec<VertexId> = (0..rng.gen_range(0..8u32))
                        .filter(|_| rng.gen_bool(0.6))
                        .collect();
                    s.sort_unstable();
                    s.dedup();
                    s
                })
                .collect();
            let expected = brute_force_distinct(&sets);
            assert_eq!(count_distinct_tuples(&sets), expected, "sets {sets:?}");
        }
    }

    fn brute_force_distinct(sets: &[Vec<VertexId>]) -> u64 {
        fn rec(sets: &[Vec<VertexId>], chosen: &mut Vec<VertexId>, i: usize) -> u64 {
            if i == sets.len() {
                return 1;
            }
            let mut total = 0;
            for &v in &sets[i] {
                if !chosen.contains(&v) {
                    chosen.push(v);
                    total += rec(sets, chosen, i + 1);
                    chosen.pop();
                }
            }
            total
        }
        rec(sets, &mut Vec::new(), 0)
    }

    fn best_effort_plan(pattern: graphpi_pattern::Pattern) -> crate::config::ExecutionPlan {
        let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
        let schedules = efficient_schedules(&pattern);
        Configuration::new(pattern, schedules[0].clone(), sets[0].clone()).compile()
    }

    #[test]
    fn iep_matches_enumeration_on_house() {
        let g = generators::power_law(220, 5, 77);
        let plan = best_effort_plan(prefab::house());
        assert!(plan.iep_suffix_len >= 2);
        assert_eq!(
            count_embeddings_iep(&plan, &g),
            interp::count_embeddings(&plan, &g)
        );
    }

    #[test]
    fn iep_matches_enumeration_on_all_evaluation_patterns() {
        let g = generators::power_law(120, 5, 41);
        for (name, pattern) in prefab::evaluation_patterns() {
            let plan = best_effort_plan(pattern);
            let iep = count_embeddings_iep(&plan, &g);
            let enumerated = interp::count_embeddings(&plan, &g);
            assert_eq!(iep, enumerated, "{name}");
        }
    }

    #[test]
    fn iep_matches_enumeration_on_uniform_graph() {
        let g = generators::erdos_renyi(150, 900, 13);
        for pattern in [prefab::rectangle(), prefab::cycle_6_tri(), prefab::p2()] {
            let plan = best_effort_plan(pattern);
            assert_eq!(
                count_embeddings_iep(&plan, &g),
                interp::count_embeddings(&plan, &g)
            );
        }
    }

    #[test]
    fn hub_accelerated_iep_matches_plain() {
        let g = generators::power_law(200, 6, 55);
        let hubs = HubGraph::build(
            &g,
            HubOptions {
                max_hubs: 24,
                min_degree: 4,
            },
        );
        for pattern in [prefab::house(), prefab::p2(), prefab::cycle_6_tri()] {
            let plan = best_effort_plan(pattern);
            assert_eq!(
                count_embeddings_iep_hub(&plan, &hubs),
                count_embeddings_iep(&plan, &g)
            );
        }
    }

    #[test]
    fn iep_term_scratch_reuse_matches_fresh() {
        let g = generators::power_law(150, 5, 63);
        let plan = best_effort_plan(prefab::house());
        let outer = plan.num_loops() - plan.iep_suffix_len;
        let prefixes = interp::enumerate_prefixes(&plan, &g, outer);
        let ctx = ExecCtx::new(&g);
        let mut scratch = IepScratch::new();
        for p in prefixes.iter().take(40) {
            assert_eq!(
                iep_term_with(&plan, ctx, p, &mut scratch),
                iep_term(&plan, &g, p)
            );
        }
    }

    #[test]
    fn fallback_when_suffix_too_short() {
        // Cliques have k = 1: IEP must silently fall back to enumeration.
        let g = generators::erdos_renyi(60, 400, 3);
        let clique = prefab::clique(4);
        let sets = generate_restriction_sets(&clique, GenerationOptions::default());
        let schedule = Schedule::new(&clique, vec![0, 1, 2, 3]);
        let plan = Configuration::new(clique, schedule, sets[0].clone()).compile();
        assert_eq!(plan.iep_suffix_len, 1);
        assert_eq!(
            count_embeddings_iep(&plan, &g),
            interp::count_embeddings(&plan, &g)
        );
    }

    #[test]
    fn iep_handles_unrestricted_plans() {
        // Without restrictions the redundancy divisor equals |Aut|, and the
        // IEP count must still equal plain enumeration (which also
        // over-counts by |Aut|)... both divided consistently: enumeration
        // reports all automorphic copies, IEP divides them out of its own
        // total, so compare against enumeration / |Aut|.
        let g = generators::erdos_renyi(80, 500, 7);
        let pattern = prefab::house();
        let schedule = Schedule::new(&pattern, vec![0, 1, 2, 3, 4]);
        let plan = Configuration::new(pattern.clone(), schedule, RestrictionSet::empty()).compile();
        let aut = graphpi_pattern::automorphism::automorphism_count(&pattern) as u64;
        assert_eq!(plan.iep_correction.divisor(), aut);
        assert_eq!(
            count_embeddings_iep(&plan, &g),
            interp::count_embeddings(&plan, &g) / aut
        );
    }
}
