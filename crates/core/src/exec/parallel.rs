//! Multi-threaded execution with fine-grained prefix tasks and work
//! stealing (the intra-node half of Section IV-E).
//!
//! The paper's distributed design has a master thread execute the outermost
//! loops and pack their bound values into tasks; worker threads unpack a
//! task and run the remaining inner loops. Within one process the same idea
//! becomes: enumerate every valid prefix of depth `d` (the *task list*),
//! push the tasks into a [`crossbeam::deque::Injector`], and let a pool of
//! workers pop/steal tasks and accumulate local counts. Because real-world
//! degree distributions are heavily skewed, per-task cost varies by orders
//! of magnitude, which is exactly why the fine-grained queue plus stealing
//! is needed for load balance.

use crate::config::ExecutionPlan;
use crate::exec::{iep, interp};
use crossbeam::deque::{Injector, Steal};
use graphpi_graph::csr::{CsrGraph, VertexId};
use std::sync::atomic::{AtomicU64, Ordering};

/// How a worker counts the embeddings of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountMode {
    /// Enumerate the remaining loops (exact listing-compatible search).
    Enumerate,
    /// Use the Inclusion-Exclusion Principle over the independent suffix.
    Iep,
}

/// Options for the parallel executor.
#[derive(Debug, Clone, Copy)]
pub struct ParallelOptions {
    /// Number of worker threads (0 means "all available cores").
    pub threads: usize,
    /// Depth of the outer-loop prefix packed into each task. `None` picks
    /// the paper's heuristic: one loop for patterns with at most three
    /// vertices, two loops otherwise.
    pub prefix_depth: Option<usize>,
    /// Counting mode used by the workers.
    pub mode: CountMode,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            prefix_depth: None,
            mode: CountMode::Enumerate,
        }
    }
}

/// Resolves the task prefix depth for a plan following the paper's
/// heuristic ("the number of outer loops executed by the master thread
/// depends on the complexity of the pattern").
pub fn default_prefix_depth(plan: &ExecutionPlan) -> usize {
    let n = plan.num_loops();
    if n <= 3 {
        1
    } else {
        2.min(n - 1)
    }
}

fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

fn clamp_prefix_depth(plan: &ExecutionPlan, options: &ParallelOptions) -> usize {
    let n = plan.num_loops();
    let depth = options
        .prefix_depth
        .unwrap_or_else(|| default_prefix_depth(plan));
    let depth = depth.clamp(1, n);
    match options.mode {
        // IEP replaces exactly the innermost `iep_suffix_len` loops, so a
        // task must bind every outer loop: the candidate sets of the suffix
        // vertices reference parents anywhere in the outer prefix.
        CountMode::Iep if plan.iep_suffix_len >= 2 => n - plan.iep_suffix_len,
        _ => depth,
    }
    .max(1)
}

/// Counts embeddings in parallel.
pub fn count_parallel(plan: &ExecutionPlan, graph: &CsrGraph, options: ParallelOptions) -> u64 {
    let threads = resolve_threads(options.threads);
    let n = plan.num_loops();
    if n == 0 {
        return 0;
    }
    let depth = clamp_prefix_depth(plan, &options);

    // IEP with a too-short suffix silently degrades to enumeration, exactly
    // like the sequential path.
    let mode = if options.mode == CountMode::Iep
        && (plan.iep_suffix_len < 2 || n <= plan.iep_suffix_len)
    {
        CountMode::Enumerate
    } else {
        options.mode
    };

    // For IEP with non-uniform prefix restrictions, delegate to the
    // sequential implementation (rare fallback path, not worth a parallel
    // variant of the unrestricted re-plan).
    if mode == CountMode::Iep
        && matches!(
            plan.iep_correction,
            crate::config::IepCorrection::DivideUnrestricted { .. }
        )
    {
        return iep::count_embeddings_iep(plan, graph);
    }

    let tasks = interp::enumerate_prefixes(plan, graph, depth.min(n));
    if tasks.is_empty() {
        return 0;
    }
    if depth == n {
        // Degenerate: the prefixes are already full embeddings.
        return tasks.len() as u64;
    }

    let injector: Injector<Vec<VertexId>> = Injector::new();
    for t in tasks {
        injector.push(t);
    }

    let total = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = 0u64;
                loop {
                    match injector.steal() {
                        Steal::Success(prefix) => {
                            local += match mode {
                                CountMode::Enumerate => {
                                    interp::count_from_prefix(plan, graph, &prefix)
                                }
                                CountMode::Iep => iep::iep_term(plan, graph, &prefix),
                            };
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                }
                total.fetch_add(local, Ordering::Relaxed);
            });
        }
    });

    let raw = total.load(Ordering::Relaxed);
    match mode {
        CountMode::Enumerate => raw,
        CountMode::Iep => raw / plan.iep_correction.divisor(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;
    use crate::schedule::{efficient_schedules, Schedule};
    use graphpi_graph::generators;
    use graphpi_pattern::prefab;
    use graphpi_pattern::restriction::{
        generate_restriction_sets, GenerationOptions, RestrictionSet,
    };

    fn plan_for(pattern: graphpi_pattern::Pattern) -> ExecutionPlan {
        let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
        let schedules = efficient_schedules(&pattern);
        Configuration::new(pattern, schedules[0].clone(), sets[0].clone()).compile()
    }

    #[test]
    fn parallel_matches_sequential_enumeration() {
        let g = generators::power_law(300, 6, 5);
        for (name, pattern) in prefab::evaluation_patterns().into_iter().take(4) {
            let plan = plan_for(pattern);
            let sequential = interp::count_embeddings(&plan, &g);
            for threads in [1, 2, 4] {
                let parallel = count_parallel(
                    &plan,
                    &g,
                    ParallelOptions {
                        threads,
                        ..Default::default()
                    },
                );
                assert_eq!(parallel, sequential, "{name} with {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_iep_matches_sequential_iep() {
        let g = generators::power_law(250, 5, 6);
        for pattern in [prefab::house(), prefab::p2(), prefab::cycle_6_tri()] {
            let plan = plan_for(pattern);
            let expected = iep::count_embeddings_iep(&plan, &g);
            let got = count_parallel(
                &plan,
                &g,
                ParallelOptions {
                    threads: 4,
                    mode: CountMode::Iep,
                    ..Default::default()
                },
            );
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn prefix_depth_options_do_not_change_counts() {
        let g = generators::erdos_renyi(150, 900, 10);
        let plan = plan_for(prefab::house());
        let baseline = interp::count_embeddings(&plan, &g);
        for depth in 1..=3usize {
            let got = count_parallel(
                &plan,
                &g,
                ParallelOptions {
                    threads: 3,
                    prefix_depth: Some(depth),
                    mode: CountMode::Enumerate,
                },
            );
            assert_eq!(got, baseline, "prefix depth {depth}");
        }
    }

    #[test]
    fn triangle_uses_single_loop_tasks() {
        let plan = plan_for(prefab::triangle());
        assert_eq!(default_prefix_depth(&plan), 1);
        let g = generators::erdos_renyi(100, 700, 2);
        let got = count_parallel(&plan, &g, ParallelOptions::default());
        assert_eq!(got, interp::count_embeddings(&plan, &g));
    }

    #[test]
    fn empty_graph_counts_zero() {
        let g = graphpi_graph::GraphBuilder::new().num_vertices(50).build();
        let plan = plan_for(prefab::house());
        assert_eq!(count_parallel(&plan, &g, ParallelOptions::default()), 0);
    }

    #[test]
    fn unrestricted_iep_fallback_in_parallel_api() {
        // A plan whose IEP correction requires the unrestricted fallback
        // must still return the exact count through the parallel API.
        let g = generators::erdos_renyi(120, 600, 4);
        let pattern = prefab::path_pattern(5);
        let schedule = Schedule::new(&pattern, vec![2, 1, 3, 0, 4]);
        let restrictions = RestrictionSet::from_pairs(&[(2, 1)]);
        let plan = Configuration::new(pattern.clone(), schedule, restrictions).compile();
        assert!(matches!(
            plan.iep_correction,
            crate::config::IepCorrection::DivideUnrestricted { .. }
        ));
        let expected = iep::count_embeddings_iep(&plan, &g);
        let got = count_parallel(
            &plan,
            &g,
            ParallelOptions {
                threads: 2,
                mode: CountMode::Iep,
                ..Default::default()
            },
        );
        assert_eq!(got, expected);
    }
}
