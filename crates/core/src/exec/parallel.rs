//! Multi-threaded execution with fine-grained prefix tasks and work
//! stealing (the intra-node half of Section IV-E).
//!
//! The paper's distributed design has a master thread execute the outermost
//! loops and pack their bound values into tasks; worker threads unpack a
//! task and run the remaining inner loops. Within one process the same idea
//! becomes a streaming pipeline:
//!
//! * The **master** (the calling thread) enumerates valid prefixes of depth
//!   `d` and pushes them into a global [`Injector`] in fixed-size batches —
//!   the task list is never materialised, so workers start while the outer
//!   loops are still running and the queue holds at most a window of tasks.
//! * Each **worker** owns a lock-free Chase–Lev deque. It pops locally,
//!   refills with [`Injector::steal_batch_and_pop`] (one lock per batch),
//!   and steals batches from sibling deques when both run dry. Because
//!   real-world degree distributions are heavily skewed, per-task cost
//!   varies by orders of magnitude — fine-grained tasks plus stealing is
//!   exactly what keeps the load balanced.
//! * A task is an inline fixed-capacity [`PrefixTask`] (`Copy`, no heap),
//!   and every worker reuses one [`SearchBuffers`]/[`IepScratch`], so the
//!   steady-state worker loop performs **no heap allocation**.
//!
//! Hub acceleration (degree-descending relabeling + bitset rows for the
//! high-degree core, see [`graphpi_graph::hub`]) plugs in through
//! [`ParallelOptions::hub_bitsets`] or a prebuilt [`HubGraph`]; counts are
//! bit-identical with it on or off.

use crate::config::{ExecutionPlan, MAX_LOOPS};
use crate::exec::iep::{self, IepScratch};
use crate::exec::interp::{self, ExecCtx, SearchBuffers};
use crate::exec::sink::{sample_accepts, EmbedSink, ModeShared};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use graphpi_graph::csr::{CsrGraph, VertexId};
use graphpi_graph::hub::{HubGraph, HubOptions};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Default number of prefix tasks pushed to the injector per batch.
pub const DEFAULT_BATCH_SIZE: usize = 64;

/// A unit of parallel work: the data vertices bound by the outer loops,
/// stored inline so tasks are `Copy` and never touch the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixTask {
    len: u8,
    vertices: [VertexId; MAX_LOOPS],
}

impl PrefixTask {
    /// Packs a bound prefix (at most [`MAX_LOOPS`] vertices) into a task.
    #[inline]
    pub fn from_slice(prefix: &[VertexId]) -> Self {
        debug_assert!(prefix.len() <= MAX_LOOPS);
        let mut vertices = [0 as VertexId; MAX_LOOPS];
        vertices[..prefix.len()].copy_from_slice(prefix);
        Self {
            len: prefix.len() as u8,
            vertices,
        }
    }

    /// The bound vertices in schedule order.
    #[inline]
    pub fn as_slice(&self) -> &[VertexId] {
        &self.vertices[..self.len as usize]
    }
}

/// How a worker counts the embeddings of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountMode {
    /// Enumerate the remaining loops (exact listing-compatible search).
    Enumerate,
    /// Use the Inclusion-Exclusion Principle over the independent suffix.
    Iep,
}

/// Options for the parallel executor.
#[derive(Debug, Clone, Copy)]
pub struct ParallelOptions {
    /// Number of worker threads (0 means "all available cores").
    pub threads: usize,
    /// Depth of the outer-loop prefix packed into each task. `None` picks
    /// the paper's heuristic: one loop for patterns with at most three
    /// vertices, two loops otherwise.
    pub prefix_depth: Option<usize>,
    /// Counting mode used by the workers.
    pub mode: CountMode,
    /// Number of tasks the master pushes to the injector per batch
    /// (0 = [`DEFAULT_BATCH_SIZE`]). Larger batches amortise queue traffic;
    /// smaller batches start workers earlier on tiny inputs.
    pub batch_size: usize,
    /// Build a [`HubGraph`] (degree-descending relabeling + hub bitsets)
    /// and execute against it. Prefer [`count_parallel_with_hubs`] with a
    /// cached index when counting repeatedly on the same graph.
    pub hub_bitsets: bool,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            prefix_depth: None,
            mode: CountMode::Enumerate,
            batch_size: 0,
            hub_bitsets: false,
        }
    }
}

/// Resolves the task prefix depth for a plan following the paper's
/// heuristic ("the number of outer loops executed by the master thread
/// depends on the complexity of the pattern").
pub fn default_prefix_depth(plan: &ExecutionPlan) -> usize {
    let n = plan.num_loops();
    if n <= 3 {
        1
    } else {
        2.min(n - 1)
    }
}

/// Resolves a requested worker count (0 = all available cores). Shared by
/// the scoped executor and [`crate::exec::pool::WorkerPool`].
pub(crate) fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

fn clamp_prefix_depth(plan: &ExecutionPlan, options: &ParallelOptions) -> usize {
    let n = plan.num_loops();
    let depth = options
        .prefix_depth
        .unwrap_or_else(|| default_prefix_depth(plan));
    let depth = depth.clamp(1, n);
    match options.mode {
        // IEP replaces exactly the innermost `iep_suffix_len` loops, so a
        // task must bind every outer loop: the candidate sets of the suffix
        // vertices reference parents anywhere in the outer prefix.
        CountMode::Iep if plan.iep_suffix_len >= 2 => n - plan.iep_suffix_len,
        _ => depth,
    }
    .max(1)
}

/// Counts embeddings in parallel.
pub fn count_parallel(plan: &ExecutionPlan, graph: &CsrGraph, options: ParallelOptions) -> u64 {
    if options.hub_bitsets {
        let hubs = HubGraph::build(graph, HubOptions::default());
        run(plan, ExecCtx::with_hubs(&hubs), options)
    } else {
        run(plan, ExecCtx::new(graph), options)
    }
}

/// Counts embeddings in parallel against a prebuilt hub index (the
/// `hub_bitsets` flag is ignored; the index is always used).
pub fn count_parallel_with_hubs(
    plan: &ExecutionPlan,
    hubs: &HubGraph,
    options: ParallelOptions,
) -> u64 {
    run(plan, ExecCtx::with_hubs(hubs), options)
}

/// The execution strategy resolved from a plan and the requested options —
/// the single source of truth for mode degradation, sequential fallbacks and
/// degenerate depths, shared by the scoped executor ([`count_parallel`]) and
/// the persistent pool ([`crate::exec::pool::WorkerPool`]), which is what
/// keeps their counts bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExecPath {
    /// The plan has no loops; the count is zero.
    Empty,
    /// IEP with non-uniform prefix restrictions: delegate to the sequential
    /// implementation (rare fallback, not worth a parallel variant of the
    /// unrestricted re-plan).
    SequentialIep,
    /// The prefixes are already full embeddings; count them on the calling
    /// thread without materialising anything.
    MasterOnly {
        /// The (full) prefix depth.
        depth: usize,
    },
    /// The real parallel job: stream depth-`depth` prefixes to workers.
    Tasks {
        /// Effective counting mode (IEP may degrade to enumeration).
        mode: CountMode,
        /// Task prefix depth.
        depth: usize,
        /// Tasks per injector batch.
        batch_size: usize,
    },
}

/// Resolves how a plan must execute under the given options.
pub(crate) fn resolve_path(plan: &ExecutionPlan, options: &ParallelOptions) -> ExecPath {
    let n = plan.num_loops();
    if n == 0 {
        return ExecPath::Empty;
    }
    let depth = clamp_prefix_depth(plan, options);

    // IEP with a too-short suffix silently degrades to enumeration, exactly
    // like the sequential path.
    let mode = if options.mode == CountMode::Iep
        && (plan.iep_suffix_len < 2 || n <= plan.iep_suffix_len)
    {
        CountMode::Enumerate
    } else {
        options.mode
    };

    if mode == CountMode::Iep
        && matches!(
            plan.iep_correction,
            crate::config::IepCorrection::DivideUnrestricted { .. }
        )
    {
        return ExecPath::SequentialIep;
    }

    if depth == n {
        return ExecPath::MasterOnly { depth };
    }

    let batch_size = if options.batch_size == 0 {
        DEFAULT_BATCH_SIZE
    } else {
        options.batch_size
    };
    ExecPath::Tasks {
        mode,
        depth,
        batch_size,
    }
}

/// Executes the non-task [`ExecPath`] variants on the calling thread.
/// Returns `None` for [`ExecPath::Tasks`], which needs workers.
pub(crate) fn run_degenerate(
    plan: &ExecutionPlan,
    ctx: ExecCtx<'_>,
    path: ExecPath,
) -> Option<u64> {
    match path {
        ExecPath::Empty => Some(0),
        ExecPath::SequentialIep => Some(iep::count_embeddings_iep_in(plan, ctx)),
        ExecPath::MasterOnly { depth } => {
            let mut count = 0u64;
            interp::for_each_prefix(plan, ctx, depth, |_| count += 1);
            Some(count)
        }
        ExecPath::Tasks { .. } => None,
    }
}

/// The producer core shared by the scoped executor and the pool: enumerates
/// depth-`depth` prefixes and hands them out in batches of `batch_size`
/// through `emit`, which drains the batch into whatever queue the caller
/// uses. Tasks never materialise as a full list — workers overlap with
/// enumeration and the queue stays bounded by a window.
pub(crate) fn stream_prefix_batches(
    plan: &ExecutionPlan,
    ctx: ExecCtx<'_>,
    depth: usize,
    batch_size: usize,
    mut emit: impl FnMut(&mut Vec<PrefixTask>),
) {
    let mut batch: Vec<PrefixTask> = Vec::with_capacity(batch_size);
    interp::for_each_prefix(plan, ctx, depth, |prefix| {
        batch.push(PrefixTask::from_slice(prefix));
        if batch.len() == batch_size {
            emit(&mut batch);
        }
    });
    if !batch.is_empty() {
        emit(&mut batch);
    }
}

/// The master side of a scoped parallel job: streams prefix batches into the
/// shared injector and marks `done`. `after_batch` runs once per pushed
/// batch (and once after `done` is set).
pub(crate) fn stream_tasks(
    plan: &ExecutionPlan,
    ctx: ExecCtx<'_>,
    depth: usize,
    batch_size: usize,
    injector: &Injector<PrefixTask>,
    done: &AtomicBool,
    after_batch: impl Fn(),
) {
    stream_prefix_batches(plan, ctx, depth, batch_size, |batch| {
        injector.push_batch(batch.drain(..));
        after_batch();
    });
    done.store(true, Ordering::Release);
    after_batch();
}

/// Counts the embeddings of one prefix task — the single per-task kernel
/// every executor shares (scoped workers, pool workers serving any job, and
/// the pool's caller-runs master helping), which is what keeps their counts
/// bit-identical: a job's total is the same sum of the same per-task terms
/// regardless of which threads ran them.
#[inline]
pub(crate) fn count_one_task(
    plan: &ExecutionPlan,
    ctx: ExecCtx<'_>,
    mode: CountMode,
    prefix: &[VertexId],
    buffers: &mut SearchBuffers,
    iep_scratch: &mut IepScratch,
) -> u64 {
    match mode {
        CountMode::Enumerate => interp::count_from_prefix_with(plan, ctx, prefix, buffers),
        CountMode::Iep => iep::iep_term_with(plan, ctx, prefix, iep_scratch),
    }
}

/// Applies the IEP over-counting correction to a job's raw total.
pub(crate) fn finalize_count(raw: u64, mode: CountMode, plan: &ExecutionPlan) -> u64 {
    match mode {
        CountMode::Enumerate => raw,
        CountMode::Iep => raw / plan.iep_correction.divisor(),
    }
}

/// The mode-generic twin of [`count_one_task`]: runs one prefix task's
/// subtree into the job's [`ModeShared`]. Per-task work accumulates locally
/// (a page of embeddings, relaxed per-vertex adds, one sample decision) and
/// merges under at most one brief lock per task, so concurrent workers
/// never serialise on the match loop itself. Shared by the pool's workers,
/// the pool's caller-runs master and the degenerate sequential paths —
/// every execution shape folds the same per-task contributions.
pub(crate) fn mode_one_task(
    plan: &ExecutionPlan,
    ctx: ExecCtx<'_>,
    shared: &ModeShared,
    prefix: &[VertexId],
    buffers: &mut SearchBuffers,
) {
    match shared {
        ModeShared::Enumerate {
            limit,
            claimed,
            out,
        } => {
            if claimed.load(Ordering::Relaxed) >= *limit {
                return; // budget exhausted: drain remaining tasks cheaply
            }
            let arity = plan.num_loops();
            let mut local = EmbedSink::new(arity, u64::MAX);
            // Claim budget per embedding: only claims below the limit
            // record, so at most `limit` embeddings are kept globally and
            // the first over-limit claim stops this task's search.
            interp::match_from_prefix_with(
                plan,
                ctx,
                prefix,
                buffers,
                &mut ClaimingEmbed {
                    inner: &mut local,
                    claimed,
                    limit: *limit,
                    full: false,
                },
            );
            if !local.is_empty() {
                out.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .extend_from_slice(local.vertices());
            }
        }
        ModeShared::Orbit { counts } => {
            let mut sink = SharedOrbit { counts };
            interp::match_from_prefix_with(plan, ctx, prefix, buffers, &mut sink);
        }
        ModeShared::Sample { seed, rate, accum } => {
            let accepted = sample_accepts(*seed, *rate, prefix);
            let y = if accepted {
                interp::count_from_prefix_with(plan, ctx, prefix, buffers)
            } else {
                0
            };
            let mut accum = accum
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            accum.total += 1;
            if accepted {
                accum.record(y);
            }
        }
    }
}

/// An [`EmbedSink`] wrapper that claims from a job-global budget before
/// recording, so concurrent workers collectively record exactly `limit`
/// embeddings.
struct ClaimingEmbed<'a> {
    inner: &'a mut EmbedSink,
    claimed: &'a AtomicU64,
    limit: u64,
    full: bool,
}

impl crate::exec::sink::MatchSink for ClaimingEmbed<'_> {
    #[inline]
    fn on_match(&mut self, embedding: &[VertexId]) {
        if self.claimed.fetch_add(1, Ordering::Relaxed) < self.limit {
            self.inner.on_match(embedding);
        } else {
            self.full = true;
        }
    }

    #[inline]
    fn is_full(&self) -> bool {
        self.full
    }
}

/// An [`OrbitSink`]-shaped sink over the job's shared atomic counters
/// (relaxed adds: the final counts are order-free sums).
struct SharedOrbit<'a> {
    counts: &'a [AtomicU64],
}

impl crate::exec::sink::MatchSink for SharedOrbit<'_> {
    #[inline]
    fn on_match(&mut self, embedding: &[VertexId]) {
        for &v in embedding {
            self.counts[v as usize].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Executes the non-task [`ExecPath`] variants of a **mode** job on the
/// calling thread; returns `false` for [`ExecPath::Tasks`], which needs
/// workers. Mode plans are compiled with IEP disabled and executed with
/// [`CountMode::Enumerate`], so [`ExecPath::SequentialIep`] cannot occur.
pub(crate) fn run_mode_degenerate(
    plan: &ExecutionPlan,
    ctx: ExecCtx<'_>,
    path: ExecPath,
    shared: &ModeShared,
) -> bool {
    match path {
        ExecPath::Empty => true,
        ExecPath::SequentialIep => {
            unreachable!("mode jobs never request IEP execution")
        }
        ExecPath::MasterOnly { depth } => {
            // Every depth-`depth` prefix is a full embedding; feed each
            // through the shared per-task kernel (prefix == embedding).
            let mut buffers = SearchBuffers::new(plan.num_loops());
            interp::for_each_prefix(plan, ctx, depth, |prefix| {
                mode_one_task(plan, ctx, shared, prefix, &mut buffers);
            });
            true
        }
        ExecPath::Tasks { .. } => false,
    }
}

fn run(plan: &ExecutionPlan, ctx: ExecCtx<'_>, options: ParallelOptions) -> u64 {
    let threads = resolve_threads(options.threads);
    let path = resolve_path(plan, &options);
    if let Some(count) = run_degenerate(plan, ctx, path) {
        return count;
    }
    let ExecPath::Tasks {
        mode,
        depth,
        batch_size,
    } = path
    else {
        unreachable!("run_degenerate handles every other path");
    };

    let injector: Injector<PrefixTask> = Injector::new();
    let done = AtomicBool::new(false);
    let total = AtomicU64::new(0);

    let workers: Vec<Worker<PrefixTask>> = (0..threads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<PrefixTask>> = workers.iter().map(Worker::stealer).collect();

    std::thread::scope(|scope| {
        for (me, worker) in workers.into_iter().enumerate() {
            let stealers = &stealers;
            let injector = &injector;
            let done = &done;
            let total = &total;
            scope.spawn(move || {
                // Scoped workers are born and die with this one job, so
                // their scratch lives on their stack frame; pool workers
                // pass in scratch that survives across jobs.
                let mut buffers = SearchBuffers::new(plan.num_loops());
                let mut iep_scratch = IepScratch::new();
                total.fetch_add(
                    process_tasks(
                        plan,
                        ctx,
                        mode,
                        &worker,
                        me,
                        stealers,
                        injector,
                        done,
                        &mut buffers,
                        &mut iep_scratch,
                        std::thread::yield_now,
                    ),
                    Ordering::Relaxed,
                );
            });
        }

        stream_tasks(plan, ctx, depth, batch_size, &injector, &done, || {});
    });

    finalize_count(total.load(Ordering::Relaxed), mode, plan)
}

/// One worker's task-processing loop for one job: pop locally, refill from
/// the injector in batches, steal batches from siblings, and count with the
/// caller-provided reusable scratch. `idle` runs when no task is available
/// anywhere but the job is not finished (scoped workers yield; pool workers
/// park with a timeout). Returns the worker's local total.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_tasks(
    plan: &ExecutionPlan,
    ctx: ExecCtx<'_>,
    mode: CountMode,
    worker: &Worker<PrefixTask>,
    me: usize,
    stealers: &[Stealer<PrefixTask>],
    injector: &Injector<PrefixTask>,
    done: &AtomicBool,
    buffers: &mut SearchBuffers,
    iep_scratch: &mut IepScratch,
    idle: impl Fn(),
) -> u64 {
    let mut local = 0u64;
    loop {
        match next_task(worker, me, stealers, injector) {
            Some(task) => {
                local += count_one_task(plan, ctx, mode, task.as_slice(), buffers, iep_scratch);
            }
            None => {
                // No task anywhere. If the master has finished and the
                // injector is drained, any still-queued task is owned by a
                // sibling that will process it — safe to retire.
                if done.load(Ordering::Acquire) && injector.is_empty() {
                    break;
                }
                idle();
            }
        }
    }
    local
}

/// Task acquisition order: own deque, then a batch from the injector, then
/// batches stolen from siblings.
fn next_task(
    worker: &Worker<PrefixTask>,
    me: usize,
    stealers: &[Stealer<PrefixTask>],
    injector: &Injector<PrefixTask>,
) -> Option<PrefixTask> {
    if let Some(task) = worker.pop() {
        return Some(task);
    }
    loop {
        match injector.steal_batch_and_pop(worker) {
            Steal::Success(task) => return Some(task),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    for (i, stealer) in stealers.iter().enumerate() {
        if i == me {
            continue;
        }
        match stealer.steal_batch_and_pop(worker) {
            Steal::Success(task) => return Some(task),
            // On Empty move to the next victim; on Retry (lost a CAS race)
            // likewise — the caller's loop revisits every victim anyway.
            Steal::Empty | Steal::Retry => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;
    use crate::schedule::{efficient_schedules, Schedule};
    use graphpi_graph::generators;
    use graphpi_pattern::prefab;
    use graphpi_pattern::restriction::{
        generate_restriction_sets, GenerationOptions, RestrictionSet,
    };

    fn plan_for(pattern: graphpi_pattern::Pattern) -> ExecutionPlan {
        let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
        let schedules = efficient_schedules(&pattern);
        Configuration::new(pattern, schedules[0].clone(), sets[0].clone()).compile()
    }

    #[test]
    fn parallel_matches_sequential_enumeration() {
        let g = generators::power_law(220, 5, 5);
        for (name, pattern) in prefab::evaluation_patterns().into_iter().take(4) {
            let plan = plan_for(pattern);
            let sequential = interp::count_embeddings(&plan, &g);
            for threads in [1, 2, 4] {
                let parallel = count_parallel(
                    &plan,
                    &g,
                    ParallelOptions {
                        threads,
                        ..Default::default()
                    },
                );
                assert_eq!(parallel, sequential, "{name} with {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_iep_matches_sequential_iep() {
        let g = generators::power_law(250, 5, 6);
        for pattern in [prefab::house(), prefab::p2(), prefab::cycle_6_tri()] {
            let plan = plan_for(pattern);
            let expected = iep::count_embeddings_iep(&plan, &g);
            let got = count_parallel(
                &plan,
                &g,
                ParallelOptions {
                    threads: 4,
                    mode: CountMode::Iep,
                    ..Default::default()
                },
            );
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn prefix_depth_options_do_not_change_counts() {
        let g = generators::erdos_renyi(150, 900, 10);
        let plan = plan_for(prefab::house());
        let baseline = interp::count_embeddings(&plan, &g);
        for depth in 1..=3usize {
            let got = count_parallel(
                &plan,
                &g,
                ParallelOptions {
                    threads: 3,
                    prefix_depth: Some(depth),
                    ..Default::default()
                },
            );
            assert_eq!(got, baseline, "prefix depth {depth}");
        }
    }

    #[test]
    fn batch_sizes_do_not_change_counts() {
        let g = generators::power_law(200, 5, 77);
        let plan = plan_for(prefab::rectangle());
        let baseline = interp::count_embeddings(&plan, &g);
        for batch_size in [1, 3, 64, 4096] {
            let got = count_parallel(
                &plan,
                &g,
                ParallelOptions {
                    threads: 4,
                    batch_size,
                    ..Default::default()
                },
            );
            assert_eq!(got, baseline, "batch size {batch_size}");
        }
    }

    #[test]
    fn hub_bitsets_do_not_change_counts() {
        let g = generators::power_law(250, 6, 31);
        for (name, pattern) in prefab::evaluation_patterns().into_iter().take(4) {
            let plan = plan_for(pattern);
            let plain = interp::count_embeddings(&plan, &g);
            let hubbed = count_parallel(
                &plan,
                &g,
                ParallelOptions {
                    threads: 4,
                    hub_bitsets: true,
                    ..Default::default()
                },
            );
            assert_eq!(hubbed, plain, "{name}");
        }
    }

    #[test]
    fn prebuilt_hub_index_matches_plain() {
        let g = generators::power_law(200, 6, 13);
        let hubs = HubGraph::build(&g, HubOptions::default());
        for mode in [CountMode::Enumerate, CountMode::Iep] {
            let plan = plan_for(prefab::house());
            let plain = count_parallel(
                &plan,
                &g,
                ParallelOptions {
                    threads: 3,
                    mode,
                    ..Default::default()
                },
            );
            let hubbed = count_parallel_with_hubs(
                &plan,
                &hubs,
                ParallelOptions {
                    threads: 3,
                    mode,
                    ..Default::default()
                },
            );
            assert_eq!(hubbed, plain, "{mode:?}");
        }
    }

    #[test]
    fn triangle_uses_single_loop_tasks() {
        let plan = plan_for(prefab::triangle());
        assert_eq!(default_prefix_depth(&plan), 1);
        let g = generators::erdos_renyi(100, 700, 2);
        let got = count_parallel(&plan, &g, ParallelOptions::default());
        assert_eq!(got, interp::count_embeddings(&plan, &g));
    }

    #[test]
    fn empty_graph_counts_zero() {
        let g = graphpi_graph::GraphBuilder::new().num_vertices(50).build();
        let plan = plan_for(prefab::house());
        assert_eq!(count_parallel(&plan, &g, ParallelOptions::default()), 0);
    }

    #[test]
    fn prefix_task_roundtrips() {
        let task = PrefixTask::from_slice(&[5, 9, 2]);
        assert_eq!(task.as_slice(), &[5, 9, 2]);
        let empty = PrefixTask::from_slice(&[]);
        assert_eq!(empty.as_slice(), &[] as &[VertexId]);
    }

    #[test]
    fn unrestricted_iep_fallback_in_parallel_api() {
        // A plan whose IEP correction requires the unrestricted fallback
        // must still return the exact count through the parallel API.
        let g = generators::erdos_renyi(120, 600, 4);
        let pattern = prefab::path_pattern(5);
        let schedule = Schedule::new(&pattern, vec![2, 1, 3, 0, 4]);
        let restrictions = RestrictionSet::from_pairs(&[(2, 1)]);
        let plan = Configuration::new(pattern.clone(), schedule, restrictions).compile();
        assert!(matches!(
            plan.iep_correction,
            crate::config::IepCorrection::DivideUnrestricted { .. }
        ));
        let expected = iep::count_embeddings_iep(&plan, &g);
        let got = count_parallel(
            &plan,
            &g,
            ParallelOptions {
                threads: 2,
                mode: CountMode::Iep,
                ..Default::default()
            },
        );
        assert_eq!(got, expected);
    }
}
