//! The performance prediction model (Section IV-C of the paper).
//!
//! The matching algorithm is a nest of `n` loops; its cost is modelled
//! recursively as
//!
//! ```text
//! cost_i = l_i * (1 - f_i) * (c_i + cost_{i+1})     for i < n
//! cost_n = l_n * (1 - f_n)
//! ```
//!
//! where, for the `i`-th loop,
//!
//! * `l_i` is the expected cardinality of the candidate set the loop
//!   traverses, estimated from `|V|`, `p1` and `p2` (see
//!   [`graphpi_graph::GraphStats`]),
//! * `c_i` is the expected cost of the set intersections *computed inside*
//!   that loop (the candidate sets of deeper vertices whose last already
//!   bound pattern neighbor is this loop's vertex), and
//! * `f_i` is the probability that the restriction(s) enforced in this loop
//!   filter out the current partial embedding, computed exactly by
//!   enumerating the `n!` possible relative orders of the pattern vertices'
//!   data ids and filtering them restriction by restriction in loop order.
//!
//! The model is deterministic, cheap (microseconds per configuration for
//! 6-vertex patterns) and is only ever used to *rank* configurations.

use crate::config::{Configuration, ExecutionPlan};
use graphpi_graph::GraphStats;
use graphpi_pattern::restriction::Restriction;

/// Reusable cache of all `n!` relative-order permutations for a pattern
/// size, used to compute the `f_i` filter probabilities exactly.
#[derive(Debug, Clone)]
pub struct RankPermutations {
    n: usize,
    perms: Vec<Vec<u64>>,
}

impl RankPermutations {
    /// Enumerates the `n!` orders (n ≤ 10 keeps this comfortably small).
    pub fn new(n: usize) -> Self {
        assert!(n <= 10, "rank permutation enumeration limited to n <= 10");
        let mut perms = Vec::new();
        let mut current: Vec<u64> = (0..n as u64).collect();
        heap_permutations(&mut current, n, &mut perms);
        Self { n, perms }
    }

    /// Number of permutations (`n!`).
    pub fn len(&self) -> usize {
        self.perms.len()
    }

    /// True only for the degenerate zero-vertex case.
    pub fn is_empty(&self) -> bool {
        self.perms.is_empty()
    }
}

fn heap_permutations(current: &mut Vec<u64>, k: usize, out: &mut Vec<Vec<u64>>) {
    if k <= 1 {
        out.push(current.clone());
        return;
    }
    for i in 0..k {
        heap_permutations(current, k - 1, out);
        if k % 2 == 0 {
            current.swap(i, k - 1);
        } else {
            current.swap(0, k - 1);
        }
    }
}

/// Per-loop factors produced by the model (exposed for inspection, tests and
/// the ablation benchmarks).
#[derive(Debug, Clone, PartialEq)]
pub struct LoopEstimate {
    /// Expected candidate-set cardinality `l_i`.
    pub loop_size: f64,
    /// Expected intersection cost `c_i` charged to this loop.
    pub intersection_cost: f64,
    /// Restriction filter probability `f_i`.
    pub filter_probability: f64,
}

/// Full prediction for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEstimate {
    /// Per-loop factors, outermost first.
    pub loops: Vec<LoopEstimate>,
    /// The scalar cost used for ranking (`cost_1` of the recursion).
    pub total: f64,
}

/// The performance model: graph statistics plus the rank-permutation cache.
#[derive(Debug, Clone)]
pub struct PerformanceModel {
    stats: GraphStats,
    ranks: RankPermutations,
}

impl PerformanceModel {
    /// Builds a model for a pattern of `pattern_size` vertices over a graph
    /// with the given statistics.
    pub fn new(stats: GraphStats, pattern_size: usize) -> Self {
        Self {
            stats,
            ranks: RankPermutations::new(pattern_size),
        }
    }

    /// The graph statistics the model was built from.
    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    /// Predicts the cost of a configuration (compiling it internally).
    pub fn predict_configuration(&self, config: &Configuration) -> CostEstimate {
        self.predict(&config.compile())
    }

    /// Predicts the cost of a compiled plan.
    pub fn predict(&self, plan: &ExecutionPlan) -> CostEstimate {
        let n = plan.num_loops();
        assert_eq!(
            n, self.ranks.n,
            "plan size does not match the model's pattern size"
        );
        let loop_sizes: Vec<f64> = (0..n).map(|i| self.loop_size(plan, i)).collect();
        let intersection_costs: Vec<f64> =
            (0..n).map(|i| self.intersection_cost(plan, i)).collect();
        let filter_probabilities = self.filter_probabilities(plan);

        // Recursive cost, evaluated innermost-out.
        let mut cost = 0.0f64;
        for i in (0..n).rev() {
            let l = loop_sizes[i];
            let keep = 1.0 - filter_probabilities[i];
            cost = if i == n - 1 {
                l * keep
            } else {
                l * keep * (intersection_costs[i] + cost)
            };
        }

        let loops = (0..n)
            .map(|i| LoopEstimate {
                loop_size: loop_sizes[i],
                intersection_cost: intersection_costs[i],
                filter_probability: filter_probabilities[i],
            })
            .collect();
        CostEstimate { loops, total: cost }
    }

    /// `l_i`: expected cardinality of loop `i`'s candidate set.
    fn loop_size(&self, plan: &ExecutionPlan, i: usize) -> f64 {
        let parents = plan.loops[i].parents.len();
        if parents == 0 {
            self.stats.num_vertices as f64
        } else {
            self.stats.expected_intersection_size(parents)
        }
    }

    /// `c_i`: expected cost of the intersections *computed* in loop `i`,
    /// i.e. for every deeper loop `t` whose last parent is `i` and which has
    /// at least two parents, the incremental merge costs of building its
    /// candidate set.
    fn intersection_cost(&self, plan: &ExecutionPlan, i: usize) -> f64 {
        let mut cost = 0.0;
        for t in (i + 1)..plan.num_loops() {
            let parents = &plan.loops[t].parents;
            if parents.len() >= 2 && *parents.last().unwrap() == i {
                // Incremental merge: ((N ∩ N) ∩ N) ∩ ...
                // The j-th step merges the running intersection of j
                // neighborhoods (expected size) with one more neighborhood
                // (expected size 2|E|/|V|), at cost equal to the sum of the
                // two cardinalities.
                let neighborhood = self.stats.expected_neighborhood_size();
                for j in 1..parents.len() {
                    cost += self.stats.expected_intersection_size(j) + neighborhood;
                }
            }
        }
        cost
    }

    /// `f_i`: the probability that the partial embedding is filtered out by
    /// the restrictions enforced in loop `i`, conditioned on having survived
    /// every earlier restriction. Computed exactly over the `n!` relative
    /// orders.
    fn filter_probabilities(&self, plan: &ExecutionPlan) -> Vec<f64> {
        let n = plan.num_loops();
        let order = plan.config.schedule.order();

        // Restrictions grouped by the loop where they become checkable.
        let mut per_loop: Vec<Vec<Restriction>> = vec![Vec::new(); n];
        for r in plan.config.restrictions.restrictions() {
            let pg = plan.config.schedule.position_of(r.greater);
            let ps = plan.config.schedule.position_of(r.smaller);
            per_loop[pg.max(ps)].push(*r);
        }
        // Quick exit: no restrictions at all.
        if per_loop.iter().all(|v| v.is_empty()) {
            return vec![0.0; n];
        }
        let _ = order; // ranks are indexed by pattern vertex directly

        let mut survivors: Vec<&Vec<u64>> = self.ranks.perms.iter().collect();
        let mut probabilities = vec![0.0f64; n];
        for i in 0..n {
            if per_loop[i].is_empty() || survivors.is_empty() {
                probabilities[i] = 0.0;
                continue;
            }
            let before = survivors.len();
            survivors.retain(|ids| per_loop[i].iter().all(|r| r.satisfied_by(ids)));
            let filtered = before - survivors.len();
            probabilities[i] = filtered as f64 / before as f64;
        }
        probabilities
    }
}

/// Ranks a list of configurations and returns the index of the cheapest one
/// together with every estimate (ties broken by the first occurrence).
pub fn select_best(
    model: &PerformanceModel,
    configs: &[Configuration],
) -> (usize, Vec<CostEstimate>) {
    assert!(!configs.is_empty(), "no configurations to select from");
    let estimates: Vec<CostEstimate> = configs
        .iter()
        .map(|c| model.predict_configuration(c))
        .collect();
    let best = estimates
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total.partial_cmp(&b.1.total).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    (best, estimates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use graphpi_graph::generators;
    use graphpi_pattern::prefab;
    use graphpi_pattern::restriction::RestrictionSet;

    fn stats() -> GraphStats {
        GraphStats::compute(&generators::power_law(2000, 8, 17))
    }

    fn house_config(restrictions: RestrictionSet) -> Configuration {
        let pattern = prefab::house();
        let schedule = Schedule::new(&pattern, vec![0, 1, 2, 3, 4]);
        Configuration::new(pattern, schedule, restrictions)
    }

    #[test]
    fn rank_permutation_counts() {
        assert_eq!(RankPermutations::new(3).len(), 6);
        assert_eq!(RankPermutations::new(5).len(), 120);
        assert_eq!(RankPermutations::new(6).len(), 720);
    }

    #[test]
    fn filter_probability_matches_paper_example() {
        // The single restriction id(A) > id(B) enforced in the second loop
        // filters exactly half of the relative orders: f = 1/2 (the paper's
        // f_1 = 1/2 in Figure 5's discussion).
        let model = PerformanceModel::new(stats(), 5);
        let config = house_config(RestrictionSet::from_pairs(&[(0, 1)]));
        let estimate = model.predict_configuration(&config);
        assert!((estimate.loops[1].filter_probability - 0.5).abs() < 1e-12);
        // No restrictions in the other loops.
        for i in [0usize, 2, 3, 4] {
            assert_eq!(estimate.loops[i].filter_probability, 0.0);
        }
    }

    #[test]
    fn restrictions_reduce_predicted_cost() {
        let model = PerformanceModel::new(stats(), 5);
        let unrestricted = model.predict_configuration(&house_config(RestrictionSet::empty()));
        let restricted =
            model.predict_configuration(&house_config(RestrictionSet::from_pairs(&[(0, 1)])));
        assert!(restricted.total < unrestricted.total);
        assert!(restricted.total > 0.0);
    }

    #[test]
    fn conditional_filtering_is_sequential() {
        // Two restrictions A>B (loop 1) and B>C (loop 2): the second filters
        // among the survivors of the first; together they leave 1/6 of the
        // orders (A > B > C), so f_2 = 1 - (1/6)/(1/2) = 2/3.
        let model = PerformanceModel::new(stats(), 5);
        let config = house_config(RestrictionSet::from_pairs(&[(0, 1), (1, 2)]));
        let estimate = model.predict_configuration(&config);
        assert!((estimate.loops[1].filter_probability - 0.5).abs() < 1e-12);
        assert!((estimate.loops[2].filter_probability - (2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn loop_sizes_follow_parent_counts() {
        let model = PerformanceModel::new(stats(), 5);
        let estimate = model.predict_configuration(&house_config(RestrictionSet::empty()));
        let s = stats();
        // Loop 0 scans all vertices.
        assert_eq!(estimate.loops[0].loop_size, s.num_vertices as f64);
        // Loop 1 (one parent) is the expected neighborhood size.
        assert!((estimate.loops[1].loop_size - s.expected_neighborhood_size()).abs() < 1e-9);
        // Loops 3 and 4 (two parents) shrink by a factor of p2.
        assert!(estimate.loops[3].loop_size < estimate.loops[1].loop_size);
        assert!((estimate.loops[3].loop_size - s.expected_intersection_size(2)).abs() < 1e-9);
    }

    #[test]
    fn intersection_cost_charged_to_last_parent() {
        let model = PerformanceModel::new(stats(), 5);
        let estimate = model.predict_configuration(&house_config(RestrictionSet::empty()));
        // The candidate set of E (parents A=loop0, B=loop1) is built in loop
        // 1; the candidate set of D (parents B=loop1, C=loop2) in loop 2.
        assert!(estimate.loops[1].intersection_cost > 0.0);
        assert!(estimate.loops[2].intersection_cost > 0.0);
        assert_eq!(estimate.loops[3].intersection_cost, 0.0);
        assert_eq!(estimate.loops[4].intersection_cost, 0.0);
        // Loop 0 builds nothing: C and B have a single parent each.
        assert_eq!(estimate.loops[0].intersection_cost, 0.0);
    }

    #[test]
    fn denser_graphs_cost_more() {
        let sparse = GraphStats::compute(&generators::erdos_renyi(2000, 4000, 3));
        let dense = GraphStats::compute(&generators::erdos_renyi(2000, 40000, 3));
        let config = house_config(RestrictionSet::from_pairs(&[(0, 1)]));
        let sparse_cost = PerformanceModel::new(sparse, 5)
            .predict_configuration(&config)
            .total;
        let dense_cost = PerformanceModel::new(dense, 5)
            .predict_configuration(&config)
            .total;
        assert!(dense_cost > sparse_cost);
    }

    #[test]
    fn select_best_prefers_lower_cost() {
        let model = PerformanceModel::new(stats(), 5);
        let a = house_config(RestrictionSet::empty());
        let b = house_config(RestrictionSet::from_pairs(&[(0, 1)]));
        let (best, estimates) = select_best(&model, &[a, b]);
        assert_eq!(best, 1);
        assert_eq!(estimates.len(), 2);
    }

    #[test]
    #[should_panic]
    fn select_best_rejects_empty() {
        let model = PerformanceModel::new(stats(), 5);
        let _ = select_best(&model, &[]);
    }
}
