//! GraphPi core: high-performance graph pattern matching through effective
//! redundancy elimination.
//!
//! This crate is the primary contribution of the reproduction: it combines
//! the substrates ([`graphpi_graph`] for the data-graph side and
//! [`graphpi_pattern`] for patterns, automorphisms and restriction sets)
//! into the full GraphPi pipeline of the paper:
//!
//! 1. **Schedule generation** ([`schedule`]) — the 2-phase computation-avoid
//!    generator keeps only vertex orders whose prefixes stay connected and
//!    whose suffix is an independent set.
//! 2. **Configuration generation** ([`config`]) — schedules are combined
//!    with the restriction sets produced by the 2-cycle automorphism
//!    elimination algorithm and compiled into executable loop nests.
//! 3. **Performance prediction** ([`perf_model`]) — a cost model driven by
//!    `|V|`, `|E|` and the triangle count ranks every configuration and the
//!    best one is selected.
//! 4. **Execution** ([`exec`]) — sequential, multi-threaded (work-stealing)
//!    and simulated-cluster executors, plus Inclusion-Exclusion-Principle
//!    counting when only the number of embeddings is needed.
//! 5. **Code generation** ([`codegen`]) — renders the selected plan as the
//!    nested-loop source text the original system would have compiled.
//!
//! # Quick start
//!
//! ```
//! use graphpi_core::engine::GraphPi;
//! use graphpi_graph::generators;
//! use graphpi_pattern::prefab;
//!
//! // A synthetic power-law data graph and the paper's House pattern.
//! let graph = generators::power_law(500, 6, 42);
//! let engine = GraphPi::new(graph);
//! let houses = engine.count(&prefab::house()).unwrap();
//! assert!(houses > 0);
//! ```

pub mod codegen;
pub mod config;
pub mod dynamic;
pub mod engine;
pub mod error;
pub mod exec;
pub mod net;
pub mod perf_model;
pub mod persist;
pub mod schedule;

pub use config::{Configuration, ExecutionPlan, IepCorrection, PoolOptions, ServeOptions};
pub use dynamic::{DynamicEngine, PinnedEngine};
pub use engine::{
    ApproxCount, CacheStats, CountOptions, GraphPi, Plan, PlanCache, PlanOptions, SavedPlanKey,
    Session, WarmStartReport,
};
pub use error::EngineError;
pub use exec::pool::WorkerPool;
pub use net::{Client, CountExt, NetError, QueryMode, Server, ServerHandle};
pub use perf_model::PerformanceModel;
pub use schedule::Schedule;

/// Convenience prelude for downstream code and examples.
pub mod prelude {
    pub use crate::config::{Configuration, PoolOptions, ServeOptions};
    pub use crate::engine::{
        ApproxCount, CacheStats, CountOptions, GraphPi, Plan, PlanCache, PlanOptions, Session,
    };
    pub use crate::error::EngineError;
    pub use crate::exec::pool::WorkerPool;
    pub use crate::net::{Client, CountExt, NetError, QueryMode, Server, ServerHandle};
    pub use crate::perf_model::PerformanceModel;
    pub use crate::schedule::Schedule;
    pub use graphpi_graph::prelude::*;
    pub use graphpi_pattern::{prefab, Pattern};
}
