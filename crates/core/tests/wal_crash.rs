//! Durability, out of process: these tests shell the real
//! `graphpi-server --wal`, commit edge batches over the v2 wire protocol,
//! SIGKILL the process mid-stream, restart it on the same write-ahead
//! log, and prove the recovered state bit-identical to a reference run
//! that was never interrupted — every acknowledged batch survives, the
//! generation counter resumes exactly where it stopped, and counts in
//! every execution mode agree with the reference engine.

#![cfg(unix)]

use graphpi_core::net::protocol::ErrorCode;
use graphpi_core::net::{Client, NetError};
use graphpi_core::DynamicEngine;
use graphpi_graph::{generators, io, EdgeBatch};
use graphpi_pattern::prefab;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// A per-test scratch directory with a real graph file in it.
fn scratch(label: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("graphpi_wal_{label}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("graph.txt");
    let graph = generators::power_law(140, 4, 61);
    let mut text = String::new();
    for (u, v) in graph.edges() {
        if u < v {
            text.push_str(&format!("{u} {v}\n"));
        }
    }
    std::fs::write(&graph_path, text).unwrap();
    (dir, graph_path)
}

/// One round's wire batch: the insert list, then the delete list.
type RoundEdges = (Vec<(u32, u32)>, Vec<(u32, u32)>);

/// The deterministic update stream both the server run and the reference
/// replay: round `r` inserts four edges and deletes two.
fn round_edges(round: u32) -> RoundEdges {
    const N: u32 = 140;
    let inserts = (0..4)
        .map(|k| {
            let u = (round * 9 + k) % N;
            (u, (u * 5 + 13 + round) % N)
        })
        .collect();
    let deletes = (0..2)
        .map(|k| {
            let u = (round * 4 + k + 2) % N;
            (u, (u + 3 + round) % N)
        })
        .collect();
    (inserts, deletes)
}

fn round_batch(round: u32) -> EdgeBatch {
    let (inserts, deletes) = round_edges(round);
    let mut batch = EdgeBatch::new();
    for (u, v) in inserts {
        batch.insert(u, v);
    }
    for (u, v) in deletes {
        batch.delete(u, v);
    }
    batch
}

/// A spawned `graphpi-server` child plus the address it bound.
struct ServerProcess {
    child: Child,
    addr: SocketAddr,
}

impl ServerProcess {
    /// Spawns the real server binary (optionally with `--wal`) and blocks
    /// until it prints its `listening on <addr>` line — which the server
    /// only does once WAL recovery has fully replayed.
    fn spawn(graph: &Path, wal: Option<&Path>) -> Self {
        let mut command = Command::new(env!("CARGO_BIN_EXE_graphpi-server"));
        command
            .arg("--graph")
            .arg(graph)
            .arg("--listen")
            .arg("127.0.0.1:0")
            .arg("--threads")
            .arg("2")
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(wal) = wal {
            command.arg("--wal").arg(wal);
        }
        let mut child = command.spawn().expect("spawn graphpi-server");
        let stdout = child.stdout.take().expect("captured stdout");
        let mut lines = BufReader::new(stdout).lines();
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .expect("read server stdout");
        let addr = line
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected server banner: {line}"))
            .parse()
            .expect("parse listen address");
        Self { child, addr }
    }

    fn client(&self) -> Client {
        Client::connect(self.addr).expect("connect to spawned server")
    }

    /// SIGKILL — the crash under test. Nothing graceful may run.
    fn kill_hard(&mut self) {
        self.child.kill().expect("SIGKILL the server");
        self.child.wait().expect("reap the killed server");
    }
}

impl Drop for ServerProcess {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

#[test]
fn kill_dash_nine_recovers_every_acknowledged_batch() {
    const ROUNDS_BEFORE_CRASH: u32 = 4;
    const ROUNDS_TOTAL: u32 = 7;
    let (dir, graph_path) = scratch("kill9");
    let wal = dir.join("graph.wal");

    // Reference run, never interrupted: the *same parsed graph* the
    // server loads (vertex interning order and all), the same batches.
    let reference = DynamicEngine::volatile(io::load_edge_list(&graph_path).unwrap());
    let mut expected_house = vec![reference.pin().engine().count(&prefab::house()).unwrap()];
    let mut expected_triangle = vec![reference.pin().engine().count(&prefab::triangle()).unwrap()];
    for round in 0..ROUNDS_TOTAL {
        reference.apply(&round_batch(round)).unwrap();
        expected_house.push(reference.pin().engine().count(&prefab::house()).unwrap());
        expected_triangle.push(reference.pin().engine().count(&prefab::triangle()).unwrap());
    }
    assert!(
        expected_house.windows(2).any(|w| w[0] != w[1]),
        "the update stream must actually change the house count"
    );

    // First lifetime: commit batches over the wire, checking counts after
    // every acknowledged generation, then SIGKILL — no graceful path runs.
    let mut server = ServerProcess::spawn(&graph_path, Some(&wal));
    {
        let mut client = server.client();
        assert_eq!(
            client.count(&prefab::house()).unwrap().count,
            expected_house[0]
        );
        for round in 0..ROUNDS_BEFORE_CRASH {
            let (inserts, deletes) = round_edges(round);
            let ack = client.update(&inserts, &deletes).unwrap();
            assert_eq!(ack.generation, u64::from(round) + 1);
            let generation = usize::try_from(ack.generation).unwrap();
            assert_eq!(
                client.count(&prefab::house()).unwrap().count,
                expected_house[generation]
            );
        }
    }
    server.kill_hard();

    // Second lifetime, same WAL: recovery must land on exactly the state
    // of the last acknowledged batch — counts bit-identical to the
    // uninterrupted reference, in more than one pattern.
    let mut restarted = ServerProcess::spawn(&graph_path, Some(&wal));
    {
        let crash_gen = usize::try_from(ROUNDS_BEFORE_CRASH).unwrap();
        let mut client = restarted.client();
        assert_eq!(
            client.count(&prefab::house()).unwrap().count,
            expected_house[crash_gen]
        );
        assert_eq!(
            client.count(&prefab::triangle()).unwrap().count,
            expected_triangle[crash_gen]
        );

        // The generation counter resumes where it stopped: the next
        // batch is acknowledged as generation ROUNDS_BEFORE_CRASH + 1,
        // not 1 — recovery replayed the log, it did not restart it.
        for round in ROUNDS_BEFORE_CRASH..ROUNDS_TOTAL {
            let (inserts, deletes) = round_edges(round);
            let ack = client.update(&inserts, &deletes).unwrap();
            assert_eq!(ack.generation, u64::from(round) + 1);
        }
        let final_gen = usize::try_from(ROUNDS_TOTAL).unwrap();
        assert_eq!(
            client.count(&prefab::house()).unwrap().count,
            expected_house[final_gen]
        );
        assert_eq!(
            client.count(&prefab::triangle()).unwrap().count,
            expected_triangle[final_gen]
        );
        client.shutdown_server().unwrap();
    }
    assert!(restarted.child.wait().unwrap().success());

    // Third lifetime: even after a graceful drain the WAL alone carries
    // the full history — counts still match the reference.
    let mut third = ServerProcess::spawn(&graph_path, Some(&wal));
    {
        let final_gen = usize::try_from(ROUNDS_TOTAL).unwrap();
        let mut client = third.client();
        assert_eq!(
            client.count(&prefab::house()).unwrap().count,
            expected_house[final_gen]
        );
        client.shutdown_server().unwrap();
    }
    assert!(third.child.wait().unwrap().success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn static_server_answers_update_with_read_only() {
    let (dir, graph_path) = scratch("readonly");
    let mut server = ServerProcess::spawn(&graph_path, None);
    {
        let mut client = server.client();
        let (inserts, deletes) = round_edges(0);
        match client.update(&inserts, &deletes) {
            Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::ReadOnly),
            other => panic!("static server must reject updates with ReadOnly, got {other:?}"),
        }
        // The connection survives the rejection: queries still work.
        assert!(client.count(&prefab::triangle()).unwrap().count > 0);
        client.shutdown_server().unwrap();
    }
    assert!(server.child.wait().unwrap().success());
    std::fs::remove_dir_all(&dir).ok();
}
