//! Integration tests that shell the real `graphpi-cli` binary: argument
//! validation must fail with a clear message and a nonzero exit code (no
//! silent fallthrough to defaults), and the happy paths — including the
//! `--clients` concurrent-load mode — must work end to end as a user would
//! invoke them.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_graphpi-cli"))
}

fn run(args: &[&str]) -> Output {
    cli().args(args).output().expect("spawn graphpi-cli")
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn stdout_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Writes a tiny two-triangle graph and returns its path (unique per test
/// so concurrent test binaries cannot race on the file).
fn temp_graph(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphpi_cli_shell_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{label}.txt"));
    std::fs::write(&path, "0 1\n1 2\n0 2\n2 3\n1 3\n").unwrap();
    path
}

/// Asserts the invocation failed (nonzero exit) and that stderr mentions
/// `needle` — the "clear error message" half of the contract.
fn assert_rejected(args: &[&str], needle: &str) {
    let output = run(args);
    assert!(
        !output.status.success(),
        "expected nonzero exit for {args:?}, got success with stdout: {}",
        stdout_of(&output)
    );
    let stderr = stderr_of(&output);
    assert!(
        stderr.contains(needle),
        "stderr for {args:?} should mention {needle:?}, got: {stderr}"
    );
}

#[test]
fn rejects_zero_repeat() {
    assert_rejected(
        &[
            "count",
            "--graph",
            "g.txt",
            "--pattern",
            "house",
            "--repeat",
            "0",
        ],
        "--repeat must be at least 1",
    );
}

#[test]
fn rejects_unknown_format() {
    assert_rejected(
        &["stats", "--graph", "g.txt", "--format", "tsv"],
        "unknown format",
    );
    assert_rejected(
        &["stats", "--graph", "g.txt", "--format", "BINARY"],
        "unknown format",
    );
}

#[test]
fn rejects_bad_clients_values() {
    assert_rejected(
        &[
            "count",
            "--graph",
            "g.txt",
            "--pattern",
            "house",
            "--session",
            "--clients",
            "0",
        ],
        "--clients must be at least 1",
    );
    assert_rejected(
        &[
            "count",
            "--graph",
            "g.txt",
            "--pattern",
            "house",
            "--session",
            "--clients",
            "two",
        ],
        "--clients must be an integer",
    );
    // Concurrent load without a shared session is meaningless.
    assert_rejected(
        &[
            "count",
            "--graph",
            "g.txt",
            "--pattern",
            "house",
            "--clients",
            "2",
        ],
        "--clients requires --session",
    );
    // And so is a job cap without the session pool to enforce it.
    assert_rejected(
        &[
            "count",
            "--graph",
            "g.txt",
            "--pattern",
            "house",
            "--max-in-flight",
            "2",
        ],
        "--max-in-flight requires --session",
    );
}

#[test]
fn rejects_unknown_flags_and_patterns() {
    assert_rejected(
        &["count", "--graph", "g.txt", "--pattern", "house", "--turbo"],
        "unknown flag",
    );
    let graph = temp_graph("badpattern");
    assert_rejected(
        &[
            "count",
            "--graph",
            graph.to_str().unwrap(),
            "--pattern",
            "nonsense",
        ],
        "unknown pattern",
    );
}

#[test]
fn rejects_missing_graph_file_with_typed_error() {
    assert_rejected(
        &[
            "count",
            "--graph",
            "/nonexistent/graphpi/graph.txt",
            "--pattern",
            "triangle",
        ],
        "failed to load",
    );
}

#[test]
fn counts_triangles_end_to_end() {
    let graph = temp_graph("happy");
    let output = run(&[
        "count",
        "--graph",
        graph.to_str().unwrap(),
        "--pattern",
        "triangle",
        "--threads",
        "1",
    ]);
    assert!(output.status.success(), "stderr: {}", stderr_of(&output));
    assert!(
        stdout_of(&output).contains("embeddings: 2"),
        "stdout: {}",
        stdout_of(&output)
    );
}

#[test]
fn rejects_nonsensical_mode_combos() {
    // Execution-mode flags must fail loudly, not silently fall back to a
    // plain count.
    assert_rejected(
        &[
            "count", "--graph", "g.txt", "--pattern", "house", "--mode=turbo",
        ],
        "unknown mode",
    );
    assert_rejected(
        &[
            "count",
            "--graph",
            "g.txt",
            "--pattern",
            "house",
            "--mode=enumerate",
            "--session",
            "--clients",
            "2",
        ],
        "single query stream",
    );
    assert_rejected(
        &[
            "count",
            "--graph",
            "g.txt",
            "--pattern",
            "house",
            "--mode=enumerate",
            "--limit",
            "0",
        ],
        "--limit must be at least 1",
    );
    assert_rejected(
        &[
            "count",
            "--graph",
            "g.txt",
            "--pattern",
            "house",
            "--sample-rate",
            "0.5",
        ],
        "only apply to --mode=sample",
    );
    assert_rejected(
        &[
            "count",
            "--graph",
            "g.txt",
            "--pattern",
            "house",
            "--mode=sample",
            "--sample-rate",
            "2",
        ],
        "must be in (0, 1]",
    );
    assert_rejected(
        &[
            "remote",
            "--pattern",
            "house",
            "--enumerate",
            "--clients",
            "2",
        ],
        "cannot combine with",
    );
    assert_rejected(
        &["remote", "--pattern", "house", "--mode=enumerate"],
        "--enumerate",
    );
}

#[test]
fn mode_queries_end_to_end() {
    let graph = temp_graph("modes");
    let graph = graph.to_str().unwrap();
    // Enumerate: the two triangles, then the summary line.
    let output = run(&[
        "count",
        "--graph",
        graph,
        "--pattern",
        "triangle",
        "--mode=enumerate",
        "--limit",
        "10",
    ]);
    assert!(output.status.success(), "stderr: {}", stderr_of(&output));
    let stdout = stdout_of(&output);
    assert!(
        stdout.contains("enumerated: 2 embeddings (limit 10)"),
        "stdout: {stdout}"
    );
    // Orbit: counts sum to pattern_size x global count; all four vertices
    // join at least one triangle.
    let output = run(&[
        "count",
        "--graph",
        graph,
        "--pattern",
        "triangle",
        "--mode=orbit",
    ]);
    assert!(output.status.success(), "stderr: {}", stderr_of(&output));
    let stdout = stdout_of(&output);
    assert!(
        stdout.contains("orbit: counts sum 6 = 3 x 2 embeddings, 4/4 vertices participate"),
        "stdout: {stdout}"
    );
    // Sample at rate 1 degenerates to the exact count with zero stderr.
    let output = run(&[
        "count",
        "--graph",
        graph,
        "--pattern",
        "triangle",
        "--mode=sample",
        "--sample-rate",
        "1.0",
        "--sample-seed",
        "42",
    ]);
    assert!(output.status.success(), "stderr: {}", stderr_of(&output));
    let stdout = stdout_of(&output);
    assert!(
        stdout.contains("sample: estimate 2.0 +- 0.0 stderr"),
        "stdout: {stdout}"
    );
}

#[test]
fn clients_mode_reports_aggregate_throughput() {
    let graph = temp_graph("clients");
    let output = run(&[
        "count",
        "--graph",
        graph.to_str().unwrap(),
        "--pattern",
        "triangle",
        "--threads",
        "2",
        "--session",
        "--clients",
        "2",
        "--repeat",
        "3",
        "--max-in-flight",
        "2",
    ]);
    assert!(output.status.success(), "stderr: {}", stderr_of(&output));
    let stdout = stdout_of(&output);
    assert!(stdout.contains("clients x2"), "stdout: {stdout}");
    assert!(stdout.contains("queries/s aggregate"), "stdout: {stdout}");
    assert!(
        stdout.contains("embeddings: 2  (bit-identical across all clients)"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("max 2 jobs in flight"), "stdout: {stdout}");
}
