//! Crash safety, out of process: these tests shell the real
//! `graphpi-server` binary, kill it for real (SIGKILL / SIGTERM), and
//! verify the restart contract — a `kill -9` loses at most one background
//! snapshot interval of plan-cache warmth, and a SIGTERM drains exactly
//! like the SHUTDOWN opcode (final snapshot included). Counts must be
//! bit-identical across every lifetime.

#![cfg(unix)]

use graphpi_core::net::Client;
use graphpi_graph::generators;
use graphpi_pattern::prefab;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant, SystemTime};

/// A per-test scratch directory with a real graph file in it.
fn scratch(label: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("graphpi_crash_{label}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("graph.txt");
    let graph = generators::power_law(150, 5, 73);
    let mut text = String::new();
    for (u, v) in graph.edges() {
        if u < v {
            text.push_str(&format!("{u} {v}\n"));
        }
    }
    std::fs::write(&graph_path, text).unwrap();
    (dir, graph_path)
}

/// A spawned `graphpi-server` child plus the address it bound.
struct ServerProcess {
    child: Child,
    addr: SocketAddr,
}

impl ServerProcess {
    /// Spawns the real server binary and blocks until it prints its
    /// `listening on <addr>` line.
    fn spawn(graph: &Path, persist: &Path, snapshot_interval_ms: Option<u64>) -> Self {
        let mut command = Command::new(env!("CARGO_BIN_EXE_graphpi-server"));
        command
            .arg("--graph")
            .arg(graph)
            .arg("--listen")
            .arg("127.0.0.1:0")
            .arg("--threads")
            .arg("2")
            .arg("--persist")
            .arg(persist)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(interval) = snapshot_interval_ms {
            command
                .arg("--snapshot-interval-ms")
                .arg(interval.to_string());
        }
        let mut child = command.spawn().expect("spawn graphpi-server");
        let stdout = child.stdout.take().expect("captured stdout");
        let mut lines = BufReader::new(stdout).lines();
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .expect("read server stdout");
        let addr = line
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected server banner: {line}"))
            .parse()
            .expect("parse listen address");
        Self { child, addr }
    }

    fn client(&self) -> Client {
        // The listener is up before the banner prints, so this connects
        // first try.
        Client::connect(self.addr).expect("connect to spawned server")
    }

    /// SIGKILL — the crash under test. Nothing graceful may run.
    fn kill_hard(&mut self) {
        self.child.kill().expect("SIGKILL the server");
        self.child.wait().expect("reap the killed server");
    }

    /// SIGTERM, then wait for the graceful exit.
    fn terminate(&mut self) -> std::process::ExitStatus {
        Command::new("kill")
            .arg("-TERM")
            .arg(self.child.id().to_string())
            .status()
            .expect("send SIGTERM");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(status) = self.child.try_wait().expect("poll the server") {
                return status;
            }
            assert!(
                Instant::now() < deadline,
                "SIGTERM did not drain the server"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl Drop for ServerProcess {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

/// Waits until `path` has been (re)written after `after` — how the tests
/// know a background snapshot that includes their queries landed on disk.
fn wait_for_snapshot_after(path: &Path, after: SystemTime) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(modified) = std::fs::metadata(path).and_then(|m| m.modified()) {
            if modified > after {
                return;
            }
        }
        assert!(
            Instant::now() < deadline,
            "no background snapshot appeared at {path:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn kill_dash_nine_loses_at_most_one_snapshot_interval() {
    let (dir, graph) = scratch("kill9");
    let persist = dir.join("plans.gppc");
    std::fs::remove_file(&persist).ok();

    // First lifetime: two patterns enter the cache; a background snapshot
    // (50 ms interval) writes them; SIGKILL — no graceful path runs.
    let mut server = ServerProcess::spawn(&graph, &persist, Some(50));
    let first_house;
    let first_triangle;
    {
        let mut client = server.client();
        first_house = client.count(&prefab::house()).unwrap().count;
        first_triangle = client.count(&prefab::triangle()).unwrap().count;
    }
    let queries_done = SystemTime::now();
    wait_for_snapshot_after(&persist, queries_done);
    server.kill_hard();

    // Second lifetime: the periodic snapshot alone must warm-start the
    // previous working set, and the answers must be bit-identical.
    let mut restarted = ServerProcess::spawn(&graph, &persist, Some(50));
    {
        let mut client = restarted.client();
        let stats = client.stats().unwrap();
        assert!(
            stats.warm_started >= 2,
            "expected the killed server's working set to warm-start, got {}",
            stats.warm_started
        );
        assert_eq!(client.count(&prefab::house()).unwrap().count, first_house);
        assert_eq!(
            client.count(&prefab::triangle()).unwrap().count,
            first_triangle
        );
        let stats = client.stats().unwrap();
        assert!(
            stats.cache_hits >= 2,
            "warm-started patterns must be cache hits, got {} hits",
            stats.cache_hits
        );
        client.shutdown_server().unwrap();
    }
    assert!(restarted.child.wait().unwrap().success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_drains_gracefully_with_a_final_snapshot() {
    let (dir, graph) = scratch("sigterm");
    let persist = dir.join("plans.gppc");
    std::fs::remove_file(&persist).ok();

    // First lifetime: no background snapshots — the persist file can only
    // come from the SIGTERM-triggered graceful drain.
    let mut server = ServerProcess::spawn(&graph, &persist, None);
    let first_house;
    {
        let mut client = server.client();
        first_house = client.count(&prefab::house()).unwrap().count;
    }
    assert!(
        !persist.exists(),
        "nothing should persist before the drain without a snapshot interval"
    );
    let status = server.terminate();
    assert!(
        status.success(),
        "SIGTERM drain must exit cleanly: {status}"
    );
    assert!(
        persist.exists(),
        "the SIGTERM drain must write the final snapshot"
    );

    // Second lifetime warm-starts from that final snapshot.
    let mut restarted = ServerProcess::spawn(&graph, &persist, None);
    {
        let mut client = restarted.client();
        let stats = client.stats().unwrap();
        assert!(stats.warm_started >= 1);
        assert_eq!(client.count(&prefab::house()).unwrap().count, first_house);
        client.shutdown_server().unwrap();
    }
    assert!(restarted.child.wait().unwrap().success());
    std::fs::remove_dir_all(&dir).ok();
}
