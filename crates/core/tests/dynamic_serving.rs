//! Concurrent consistency for dynamic serving: query threads hammer a
//! [`DynamicEngine`] across every execution mode (IEP on/off, hub
//! acceleration on/off) while a writer commits edge batches underneath.
//! Every observation is a `(generation, mode, count)` triple, and each
//! must match the count precomputed offline for exactly that generation —
//! a torn read (a query seeing half of a batch) or a stale plan served
//! across generations would both show up as a mismatch.

use graphpi_core::engine::{CountOptions, GraphPi, PlanCache, PlanOptions};
use graphpi_core::exec::pool::WorkerPool;
use graphpi_core::DynamicEngine;
use graphpi_graph::{generators, EdgeBatch};
use graphpi_pattern::prefab;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The deterministic batch sequence both the live run and the offline
/// reference replay. Each batch inserts a few edges and deletes a few,
/// touching hubs (low vertex ids in a power-law graph) so counts really
/// move between generations.
fn batch(round: u32, n: u32) -> EdgeBatch {
    let mut batch = EdgeBatch::new();
    for k in 0..4 {
        let u = (round * 5 + k) % n;
        let v = (u * 7 + 11 + round) % n;
        batch.insert(u, v);
    }
    for k in 0..2 {
        let u = (round * 3 + k + 1) % n;
        let v = (u + 1 + round) % n;
        batch.delete(u, v);
    }
    batch
}

/// The four execution modes of the agreement matrix.
const MODES: [(bool, bool); 4] = [(true, false), (false, false), (true, true), (false, true)];

fn mode_options((use_iep, hub_bitsets): (bool, bool)) -> CountOptions {
    CountOptions {
        use_iep,
        hub_bitsets,
        ..CountOptions::default()
    }
}

#[test]
fn concurrent_queries_agree_with_per_generation_references() {
    const N: u32 = 110;
    const ROUNDS: u32 = 8;
    const QUERY_THREADS: usize = 4;
    let initial = generators::power_law(N as usize, 4, 97);
    let pattern = prefab::house();

    // Offline reference: replay the same batches on a private engine and
    // record the expected count per (generation, mode) — all four modes
    // must already agree here, or the matrix itself is broken.
    let reference = DynamicEngine::volatile(initial.clone());
    let ref_pool = Arc::new(WorkerPool::new(2));
    let ref_cache = Arc::new(PlanCache::new(64));
    let count_all_modes = |engine: &GraphPi| -> u64 {
        let session = engine.session_shared(
            Arc::clone(&ref_pool),
            Arc::clone(&ref_cache),
            PlanOptions::default(),
            CountOptions::default(),
        );
        let counts: Vec<u64> = MODES
            .iter()
            .map(|&mode| session.count_with(&pattern, mode_options(mode)).unwrap())
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "execution modes disagree on one fixed graph: {counts:?}"
        );
        counts[0]
    };
    let mut expected = vec![count_all_modes(reference.pin().engine())];
    for round in 0..ROUNDS {
        reference.apply(&batch(round, N)).unwrap();
        expected.push(count_all_modes(reference.pin().engine()));
    }
    assert!(
        expected.windows(2).any(|w| w[0] != w[1]),
        "the batch sequence must actually change the house count"
    );

    // Live run: one writer commits the same batches with pauses while
    // query threads pin generations and count in all four modes.
    let engine = DynamicEngine::volatile(initial);
    let pool = Arc::new(WorkerPool::new(2));
    let cache = Arc::new(PlanCache::new(64));
    let writer_done = AtomicBool::new(false);
    let observations: Vec<Vec<(u64, usize, u64)>> = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for round in 0..ROUNDS {
                std::thread::sleep(Duration::from_millis(15));
                let report = engine.apply(&batch(round, N)).unwrap();
                assert_eq!(report.generation, u64::from(round) + 1);
            }
            writer_done.store(true, Ordering::Release);
        });
        let queriers: Vec<_> = (0..QUERY_THREADS)
            .map(|thread_index| {
                let engine = &engine;
                let pool = &pool;
                let cache = &cache;
                let pattern = &pattern;
                let writer_done = &writer_done;
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    let mut turn = thread_index; // stagger the mode cycling
                    loop {
                        let done = writer_done.load(Ordering::Acquire);
                        let mode_index = turn % MODES.len();
                        let pin = engine.pin();
                        let session = pin.engine().session_shared(
                            Arc::clone(pool),
                            Arc::clone(cache),
                            PlanOptions::default(),
                            CountOptions::default(),
                        );
                        let count = session
                            .count_with(pattern, mode_options(MODES[mode_index]))
                            .unwrap();
                        seen.push((pin.generation(), mode_index, count));
                        turn += 1;
                        if done {
                            return seen;
                        }
                    }
                })
            })
            .collect();
        writer.join().expect("writer thread");
        queriers
            .into_iter()
            .map(|handle| handle.join().expect("query thread"))
            .collect()
    });

    // Every observation must match the offline reference for exactly the
    // generation it pinned — regardless of mode or timing.
    let mut total = 0usize;
    let mut generations_seen = std::collections::BTreeSet::new();
    for (thread_index, seen) in observations.iter().enumerate() {
        for &(generation, mode_index, count) in seen {
            let want = expected[usize::try_from(generation).unwrap()];
            assert_eq!(
                count, want,
                "thread {thread_index} pinned generation {generation} \
                 (mode {mode_index}) and saw {count}, reference says {want}"
            );
            generations_seen.insert(generation);
            total += 1;
        }
    }
    // The writer finished, so the final generation is always observed at
    // least once (each querier does a last pass after `done`).
    assert!(generations_seen.contains(&u64::from(ROUNDS)));
    assert!(
        total >= QUERY_THREADS,
        "each query thread observes at least once"
    );
}

#[test]
fn pinned_generation_outlives_later_commits() {
    let engine = DynamicEngine::volatile(generators::power_law(90, 4, 31));
    let pattern = prefab::triangle();
    let pin = engine.pin();
    let before = pin.engine().count(&pattern).unwrap();
    for round in 0..5 {
        engine.apply(&batch(round, 90)).unwrap();
    }
    // The old pin still answers from its own generation, bit-identically.
    assert_eq!(pin.engine().count(&pattern).unwrap(), before);
    assert_eq!(pin.generation(), 0);
    assert_eq!(engine.generation(), 5);
}
