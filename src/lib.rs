//! Umbrella crate re-exporting the GraphPi reproduction workspace.
//!
//! This crate exists so that the repository-level `examples/` and `tests/`
//! directories can exercise the public API of every workspace member through
//! a single import path.  Library users should normally depend on
//! [`graphpi_core`] directly.

pub use graphpi_baseline as baseline;
pub use graphpi_core as core;
pub use graphpi_graph as graph;
pub use graphpi_pattern as pattern;
