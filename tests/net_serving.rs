//! Network serving end-to-end: multi-client counts over real sockets must
//! be bit-identical to in-process execution, server stats must reconcile
//! (hits + misses == queries + warm-started), deadlines must produce typed
//! `DeadlineExceeded` errors without disturbing other clients, graceful
//! shutdown must drain in-flight queries and reject new connections, and a
//! restarted server must warm-start its plan cache from disk.

use graphpi::core::config::{PoolOptions, ServeOptions};
use graphpi::core::engine::{GraphPi, PlanCache};
use graphpi::core::exec::pool::WorkerPool;
use graphpi::core::net::client::is_deadline_exceeded;
use graphpi::core::net::ServerHandle;
use graphpi::core::net::{Client, RemoteCountOptions, Server};
use graphpi::graph::generators;
use graphpi::pattern::prefab;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Sets the drain flag when dropped. Scoped to every `thread::scope` body
/// below so a failed assertion unwinds cleanly: without it the scope's
/// implicit join would wait forever on the still-serving accept loop and
/// the panic message would never surface.
struct DrainOnDrop(ServerHandle);

impl Drop for DrainOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// A query slow enough (tens of milliseconds at tier-1 sizes) to still be
/// running while other clients act: 6-cycle-with-triangles, enumerated
/// without IEP.
fn slow_options() -> RemoteCountOptions {
    RemoteCountOptions {
        no_iep: true,
        ..RemoteCountOptions::default()
    }
}

fn slow_pattern() -> graphpi::pattern::Pattern {
    prefab::cycle_6_tri()
}

#[test]
fn multi_client_counts_match_in_process_execution_and_stats_reconcile() {
    let engine = GraphPi::new(generators::power_law(160, 5, 91));
    let patterns: Vec<_> = prefab::evaluation_patterns().into_iter().take(3).collect();
    // In-process baselines through a Session — the same execution options
    // the server uses, so "bit-identical" is a real claim.
    let baselines: Vec<u64> = {
        let session = engine.session();
        patterns
            .iter()
            .map(|(_, p)| session.count(p).unwrap())
            .collect()
    };

    let server = Server::bind("127.0.0.1:0", ServeOptions::default()).unwrap();
    let handle = server.handle().unwrap();
    let addr = handle.addr();
    const CLIENTS: usize = 4;
    const REPEAT: usize = 2;

    let report = std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine).unwrap());
        let workers: Vec<_> = (0..CLIENTS)
            .map(|client_index| {
                let patterns = &patterns;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut observed = Vec::new();
                    for _ in 0..REPEAT {
                        for (name, pattern) in patterns.iter() {
                            let result = client
                                .count(pattern)
                                .unwrap_or_else(|e| panic!("client {client_index} {name}: {e}"));
                            observed.push(result.count);
                        }
                    }
                    observed
                })
            })
            .collect();
        for worker in workers {
            let observed = worker.join().unwrap();
            for (slot, &count) in observed.iter().enumerate() {
                assert_eq!(
                    count,
                    baselines[slot % patterns.len()],
                    "remote count diverged from in-process execution"
                );
            }
        }

        // Aggregate accounting, read over the wire.
        let mut client = Client::connect(addr).unwrap();
        let stats = client.stats().unwrap();
        let queries = (CLIENTS * REPEAT * patterns.len()) as u64;
        assert_eq!(stats.queries_total, queries);
        assert_eq!(stats.warm_started, 0);
        assert_eq!(
            stats.cache_hits + stats.cache_misses,
            stats.queries_total,
            "plan-cache counters must reconcile with executed queries"
        );
        // Every pattern planned at least once; concurrent first-round
        // clients may race a plan for the same pattern, so the exact miss
        // count is bounded, not fixed.
        assert!(stats.cache_misses >= patterns.len() as u64);
        assert!(stats.cache_misses <= (CLIENTS * patterns.len()) as u64);
        assert_eq!(stats.latency.total(), queries);
        assert_eq!(stats.deadline_exceeded, 0);
        assert!(stats.live_workers > 0);

        drop(client);
        handle.shutdown();
        serving.join().unwrap()
    });
    assert_eq!(report.queries, (CLIENTS * REPEAT * patterns.len()) as u64);
    assert_eq!(report.warm_start.applicable, 0);
}

#[test]
fn deadline_exceeded_while_queued_leaves_other_clients_bit_identical() {
    let engine = GraphPi::new(generators::power_law(260, 6, 17));
    let baseline = {
        let session = engine.session();
        session.count(&prefab::house()).unwrap()
    };
    // One job slot: the slow query occupies it, so the deadline client
    // expires while *queued* — true cancellation, its query never runs.
    let pool = Arc::new(WorkerPool::with_max_in_flight(2, 1));
    let cache = Arc::new(PlanCache::new(8));
    let server = Server::bind_shared(
        "127.0.0.1:0",
        Arc::clone(&pool),
        cache,
        ServeOptions::default(),
    )
    .unwrap();
    let handle = server.handle().unwrap();
    let addr = handle.addr();

    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine).unwrap());

        let slow = scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.count_with(&slow_pattern(), slow_options()).unwrap()
        });
        // Give the slow query time to be admitted, then race a 1 ms
        // deadline against it from a second connection.
        std::thread::sleep(Duration::from_millis(30));
        let mut deadline_client = Client::connect(addr).unwrap();
        let error = deadline_client
            .count_with(
                &prefab::house(),
                RemoteCountOptions {
                    deadline_ms: 1,
                    ..RemoteCountOptions::default()
                },
            )
            .unwrap_err();
        assert!(
            is_deadline_exceeded(&error),
            "expected DeadlineExceeded, got {error}"
        );
        // The connection survives a deadline error...
        deadline_client.ping().unwrap();

        // ...the slow client is undisturbed...
        let slow_result = slow.join().unwrap();
        assert!(slow_result.count > 0);

        // ...and a fresh query still matches in-process execution exactly.
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.count(&prefab::house()).unwrap().count, baseline);

        let stats = client.stats().unwrap();
        assert!(stats.deadline_exceeded >= 1);
        // The cancelled query never executed: accounting still reconciles.
        assert_eq!(stats.cache_hits + stats.cache_misses, stats.queries_total);
        assert_eq!(stats.live_workers as usize, pool.live_workers());

        drop(client);
        drop(deadline_client);
        handle.shutdown();
        serving.join().unwrap();
    });
}

#[test]
fn impossible_deadline_on_an_executed_query_is_reported() {
    // With a free slot the query is admitted instantly, executes, and only
    // then trips its (long-expired) deadline: the reply must still be a
    // typed DeadlineExceeded, not a stale success.
    let engine = GraphPi::new(generators::power_law(260, 6, 18));
    let server = Server::bind("127.0.0.1:0", ServeOptions::default()).unwrap();
    let handle = server.handle().unwrap();
    let addr = handle.addr();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine).unwrap());
        let mut client = Client::connect(addr).unwrap();
        let error = client
            .count_with(
                &slow_pattern(),
                RemoteCountOptions {
                    deadline_ms: 1,
                    ..slow_options()
                },
            )
            .unwrap_err();
        assert!(
            is_deadline_exceeded(&error),
            "expected DeadlineExceeded, got {error}"
        );
        client.ping().unwrap();
        drop(client);
        handle.shutdown();
        serving.join().unwrap();
    });
}

#[test]
fn graceful_shutdown_drains_in_flight_queries_and_rejects_new_connections() {
    let engine = GraphPi::new(generators::power_law(260, 6, 19));
    let baseline = {
        let session = engine.session();
        session
            .count_with(
                &slow_pattern(),
                graphpi::core::engine::CountOptions {
                    use_iep: false,
                    ..Default::default()
                },
            )
            .unwrap()
    };
    let server = Server::bind("127.0.0.1:0", ServeOptions::default()).unwrap();
    let handle = server.handle().unwrap();
    let addr = handle.addr();

    let report = std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine).unwrap());
        // Start a slow query, then request shutdown while it is (very
        // likely) still in flight. Drain semantics guarantee its reply
        // arrives complete and correct either way.
        let in_flight = scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.count_with(&slow_pattern(), slow_options()).unwrap()
        });
        std::thread::sleep(Duration::from_millis(20));
        let mut admin = Client::connect(addr).unwrap();
        admin.shutdown_server().unwrap();

        let drained = in_flight.join().unwrap();
        assert_eq!(drained.count, baseline, "drained query lost its answer");
        serving.join().unwrap()
    });
    assert!(report.connections >= 2);

    // The listener is gone: new connections are refused at the OS level.
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    assert!(refused.is_err(), "a drained server accepted a connection");
}

#[test]
fn warm_start_restores_the_working_set_across_restarts() {
    let dir = std::env::temp_dir().join(format!("graphpi_net_warm_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("plans.gppc");
    std::fs::remove_file(&path).ok();

    let engine = GraphPi::new(generators::power_law(150, 5, 73));
    let options = || ServeOptions {
        pool: PoolOptions {
            threads: 2,
            ..PoolOptions::default()
        },
        persist_path: Some(path.clone()),
        ..ServeOptions::default()
    };

    // First lifetime: two patterns enter the cache, shutdown persists them.
    let (first_house, first_report) = {
        let server = Server::bind("127.0.0.1:0", options()).unwrap();
        let handle = server.handle().unwrap();
        let addr = handle.addr();
        std::thread::scope(|scope| {
            let _drain = DrainOnDrop(handle.clone());
            let serving = scope.spawn(|| server.serve(&engine).unwrap());
            let mut client = Client::connect(addr).unwrap();
            let house = client.count(&prefab::house()).unwrap().count;
            client.count(&prefab::triangle()).unwrap();
            client.shutdown_server().unwrap();
            (house, serving.join().unwrap())
        })
    };
    assert_eq!(first_report.saved_plans, 2);
    assert_eq!(first_report.warm_start.applicable, 0);

    // Second lifetime: the snapshot is re-planned at boot, so the first
    // client query is already a cache hit — and the counts are identical.
    let second_report = {
        let server = Server::bind("127.0.0.1:0", options()).unwrap();
        let handle = server.handle().unwrap();
        let addr = handle.addr();
        std::thread::scope(|scope| {
            let _drain = DrainOnDrop(handle.clone());
            let serving = scope.spawn(|| server.serve(&engine).unwrap());
            let mut client = Client::connect(addr).unwrap();
            let stats = client.stats().unwrap();
            assert_eq!(stats.warm_started, 2);
            assert_eq!(stats.cache_len, 2);

            assert_eq!(client.count(&prefab::house()).unwrap().count, first_house);
            let stats = client.stats().unwrap();
            assert_eq!(
                stats.cache_hits, 1,
                "warm start must make the first query a hit"
            );
            // Warm-start reconciliation: the two boot-time plans are the
            // only misses.
            assert_eq!(
                stats.cache_hits + stats.cache_misses,
                stats.queries_total + u64::from(stats.warm_started)
            );
            client.shutdown_server().unwrap();
            serving.join().unwrap()
        })
    };
    assert_eq!(second_report.warm_start.applicable, 2);
    assert_eq!(second_report.warm_start.warmed, 2);
    assert_eq!(second_report.saved_plans, 2);
    std::fs::remove_file(&path).ok();
}

#[test]
fn connection_limit_is_enforced_with_a_typed_error() {
    let engine = GraphPi::new(generators::power_law(120, 5, 5));
    let server = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            max_connections: 1,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let handle = server.handle().unwrap();
    let addr = handle.addr();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine).unwrap());
        let mut first = Client::connect(addr).unwrap();
        first.ping().unwrap(); // the slot is definitely taken
        let mut second = Client::connect(addr).unwrap();
        let error = second.ping().unwrap_err();
        assert!(matches!(
            error,
            graphpi::core::net::NetError::Remote {
                code: graphpi::core::net::ErrorCode::TooManyConnections,
                ..
            }
        ));
        // The admitted client is unaffected.
        first.ping().unwrap();
        drop(first);
        drop(second);
        handle.shutdown();
        serving.join().unwrap();
    });
}
