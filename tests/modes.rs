//! Execution-mode agreement suite: the match-sink pipeline's enumerate,
//! orbit and sample modes must agree with the naive ground truth and with
//! each other across the execution matrix (threads × hub layout × forced
//! scalar kernels).
//!
//! Enumeration comparisons canonicalize each emitted mapping modulo the
//! pattern's automorphism group (the lexicographically smallest automorphic
//! relabeling): under the hub layout the symmetry-breaking restrictions
//! compare relabeled ids, so a different automorphic representative may be
//! emitted per occurrence — the set of occurrences is what must match, and
//! it must contain no duplicates. Sorting the data vertices instead would
//! conflate distinct embeddings that share a vertex set (a K5 holds 60
//! house embeddings on the same five vertices).

use graphpi::baseline::naive;
use graphpi::core::engine::{CountOptions, GraphPi, PlanOptions};
use graphpi::core::{EngineError, PoolOptions};
use graphpi::graph::builder::GraphBuilder;
use graphpi::graph::{generators, CsrGraph};
use graphpi::pattern::automorphism_group;
use graphpi::pattern::prefab;
use graphpi::pattern::Pattern;
use proptest::prelude::*;

/// Canonicalizes an enumeration result for occurrence-set comparison.
fn canonical_tuples(pattern: &Pattern, embeddings: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
    let auts = automorphism_group(pattern);
    let mut tuples: Vec<Vec<u32>> = embeddings
        .iter()
        .map(|tuple| naive::canonical_embedding(&auts, tuple))
        .collect();
    tuples.sort_unstable();
    tuples
}

/// The per-vertex orbit counts implied by a canonical embedding list.
fn orbit_from_tuples(tuples: &[Vec<u32>], num_vertices: usize) -> Vec<u64> {
    let mut counts = vec![0u64; num_vertices];
    for tuple in tuples {
        for &v in tuple {
            counts[v as usize] += 1;
        }
    }
    counts
}

/// Strategy: a random simple graph with up to `max_vertices` vertices.
fn arb_graph(max_vertices: usize, max_edges: usize) -> impl Strategy<Value = CsrGraph> {
    (
        4..max_vertices,
        proptest::collection::vec((0usize..max_vertices, 0usize..max_vertices), 0..max_edges),
    )
        .prop_map(|(n, edges)| {
            let mut builder = GraphBuilder::new().num_vertices(n);
            for (u, v) in edges {
                if u != v && u < n && v < n {
                    builder.push_edge(u as u32, v as u32);
                }
            }
            builder.build()
        })
}

/// Strategy: a random connected pattern with 3..=5 vertices.
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    (3usize..=5)
        .prop_flat_map(|n| {
            let extra = proptest::collection::vec((0usize..n, 0usize..n), 0..(n * 2));
            (Just(n), extra)
        })
        .prop_map(|(n, extra)| {
            let mut edges: Vec<(usize, usize)> = (1..n).map(|v| (v - 1, v)).collect();
            for (u, v) in extra {
                if u != v {
                    edges.push((u.min(v), u.max(v)));
                }
            }
            Pattern::new(n, &edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The enumerated multiset equals the naive baseline's embedding set
    /// exactly — same occurrences, no duplicates, nothing missing.
    #[test]
    fn enumeration_matches_naive_embeddings(graph in arb_graph(20, 60), pattern in arb_pattern()) {
        let expected = naive::embeddings_sorted(&pattern, &graph);
        let engine = GraphPi::new(graph);
        let session = engine.session();
        let got = canonical_tuples(&pattern, session.enumerate(&pattern, u64::MAX).unwrap());
        prop_assert_eq!(got, expected);
    }

    /// Orbit counts equal the naive baseline per vertex, and sum to
    /// `pattern_size x global_count`.
    #[test]
    fn orbit_counts_match_naive(graph in arb_graph(20, 60), pattern in arb_pattern()) {
        let num_vertices = graph.num_vertices();
        let tuples = naive::embeddings_sorted(&pattern, &graph);
        let expected = orbit_from_tuples(&tuples, num_vertices);
        let engine = GraphPi::new(graph);
        let session = engine.session();
        let counts = session.count_per_vertex(&pattern).unwrap();
        prop_assert_eq!(&counts, &expected);
        let total = session.count(&pattern).unwrap();
        prop_assert_eq!(
            counts.iter().sum::<u64>(),
            pattern.num_vertices() as u64 * total
        );
    }
}

/// Every mode agrees with the ground truth across threads × hub layout ×
/// forced-scalar kernels, and the truncation budget is honored.
#[test]
fn modes_agree_across_execution_matrix() {
    let graph = generators::power_law(60, 4, 1);
    let num_vertices = graph.num_vertices();
    for pattern in [prefab::triangle(), prefab::house()] {
        let expected_tuples = naive::embeddings_sorted(&pattern, &graph);
        let expected_orbit = orbit_from_tuples(&expected_tuples, num_vertices);
        let exact = expected_tuples.len() as u64;
        let engine = GraphPi::new(graph.clone());
        for threads in [1usize, 4] {
            for hub_bitsets in [false, true] {
                for scalar_kernels in [false, true] {
                    let label = format!(
                        "threads={threads} hub={hub_bitsets} scalar={scalar_kernels}"
                    );
                    let options = CountOptions {
                        threads,
                        hub_bitsets,
                        scalar_kernels,
                        ..CountOptions::default()
                    };
                    let session = engine.session_with(
                        PoolOptions {
                            threads,
                            ..PoolOptions::default()
                        },
                        PlanOptions::default(),
                        options,
                    );
                    let got = canonical_tuples(
                        &pattern,
                        session.enumerate(&pattern, u64::MAX).unwrap(),
                    );
                    assert_eq!(got, expected_tuples, "enumerate {label}");
                    assert_eq!(
                        session.count_per_vertex(&pattern).unwrap(),
                        expected_orbit,
                        "orbit {label}"
                    );
                    // Rate 1 sampling degenerates to the exact count.
                    let approx = session.count_approx(&pattern, 1.0, 0).unwrap();
                    assert_eq!(approx.estimate, exact as f64, "sample {label}");
                    assert_eq!(approx.stderr, 0.0, "sample stderr {label}");
                    // A truncated enumeration honors its budget and returns
                    // valid occurrences.
                    if exact > 2 {
                        let page =
                            canonical_tuples(&pattern, session.enumerate(&pattern, 2).unwrap());
                        assert_eq!(page.len(), 2, "limit {label}");
                        for tuple in &page {
                            assert!(
                                expected_tuples.contains(tuple),
                                "truncated page emitted a non-embedding under {label}: {tuple:?}"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Fixed-seed sampling is deterministic (independent of thread count), its
/// estimate lands within the asserted confidence band of the exact count,
/// and invalid rates are typed errors.
#[test]
fn sample_estimates_within_ci_at_fixed_seed() {
    let graph = generators::power_law(300, 5, 7);
    let engine = GraphPi::new(graph);
    let session = engine.session();
    let pattern = prefab::triangle();
    let exact = session.count(&pattern).unwrap() as f64;
    // Rate 1 is the degenerate exact case: every task sampled, zero error.
    let full = session.count_approx(&pattern, 1.0, 0).unwrap();
    assert_eq!(full.estimate, exact);
    assert_eq!(full.stderr, 0.0);
    assert_eq!(full.sampled_tasks, full.total_tasks);
    for (rate, seed) in [(0.5, 7u64), (0.25, 42)] {
        let approx = session.count_approx(&pattern, rate, seed).unwrap();
        // Deterministic replay: a single-threaded session reproduces the
        // estimate bit for bit.
        let serial = engine
            .session_with(
                PoolOptions {
                    threads: 1,
                    ..PoolOptions::default()
                },
                PlanOptions::default(),
                CountOptions {
                    threads: 1,
                    ..CountOptions::default()
                },
            )
            .count_approx(&pattern, rate, seed)
            .unwrap();
        assert_eq!(approx.estimate.to_bits(), serial.estimate.to_bits());
        assert_eq!(approx.stderr.to_bits(), serial.stderr.to_bits());
        assert!(approx.sampled_tasks < approx.total_tasks);
        // The asserted confidence band: 5 sigma around the exact count.
        // A fixed seed makes this deterministic — it either always holds
        // or the estimator is wrong.
        let sigma = approx.stderr.max(1.0);
        assert!(
            (approx.estimate - exact).abs() <= 5.0 * sigma,
            "estimate {} strays more than 5 sigma ({sigma}) from exact {exact} \
             at rate {rate} seed {seed}",
            approx.estimate
        );
    }
    // Invalid rates are typed errors, not garbage estimates.
    for bad in [0.0, -0.5, f64::NAN, f64::INFINITY] {
        assert!(matches!(
            session.count_approx(&pattern, bad, 0),
            Err(EngineError::InvalidSampleRate)
        ));
    }
}
