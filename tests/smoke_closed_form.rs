//! Smoke tests pinning the engine to closed-form subgraph counts, and
//! checking that the interpreted GraphPi executor and every baseline system
//! agree on small fixed graphs.
//!
//! These are the cheapest possible "is counting even right?" checks: if any
//! of them fails, something fundamental (restriction sets, schedules, the
//! interpreter, or a baseline) broke.

use graphpi::baseline::{naive, ExpansionEngine, GraphZeroEngine};
use graphpi::core::engine::{CountOptions, GraphPi, PlanOptions};
use graphpi::graph::builder::GraphBuilder;
use graphpi::graph::{generators, CsrGraph};
use graphpi::pattern::{prefab, Pattern};

/// n choose k as u64.
fn choose(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let mut result = 1u64;
    for i in 0..k {
        result = result * (n - i) / (i + 1);
    }
    result
}

/// Counts with the interpreted executor (sequential enumeration).
fn engine_count(graph: &CsrGraph, pattern: &Pattern) -> u64 {
    GraphPi::new(graph.clone())
        .count_with(
            pattern,
            PlanOptions::default(),
            CountOptions::sequential_enumeration(),
        )
        .expect("planning a prefab pattern on a smoke graph must succeed")
}

#[test]
fn triangle_count_on_complete_graphs_is_n_choose_3() {
    for n in 3..=9u64 {
        let g = generators::complete(n as usize);
        assert_eq!(
            engine_count(&g, &prefab::triangle()),
            choose(n, 3),
            "triangles in K_{n}"
        );
    }
}

#[test]
fn clique_counts_on_complete_graphs_are_binomials() {
    let g = generators::complete(8);
    for k in 3..=5u64 {
        assert_eq!(
            engine_count(&g, &prefab::clique(k as usize)),
            choose(8, k),
            "{k}-cliques in K_8"
        );
    }
}

#[test]
fn edge_count_on_a_path_is_n_minus_1() {
    let edge = prefab::path_pattern(2);
    for n in 2..=12u64 {
        let g = generators::path(n as usize);
        assert_eq!(engine_count(&g, &edge), n - 1, "edges in P_{n}");
    }
}

#[test]
fn path3_count_on_a_path_graph_is_n_minus_2() {
    // A 3-vertex path has one non-trivial automorphism (reversal), so the
    // embedding count on the path graph P_n is exactly its n-2 occurrences.
    let p3 = prefab::path_pattern(3);
    for n in 3..=10u64 {
        let g = generators::path(n as usize);
        assert_eq!(engine_count(&g, &p3), n - 2, "P_3 occurrences in P_{n}");
    }
}

#[test]
fn star_count_on_a_star_graph_is_one() {
    // The star with k leaves occurs exactly once in the star graph of the
    // same size (both `star` and `star_pattern` take the total vertex count).
    for n in 4..=7usize {
        let g = generators::star(n);
        assert_eq!(engine_count(&g, &prefab::star_pattern(n)), 1);
    }
}

/// A small fixed graph with known structure: two houses sharing a wall,
/// i.e. a 2x3 grid with both "floor" diagonals added.
///
/// ```text
///   3 - 4 - 5
///   | x |   |      ("x" marks the diagonals 0-4 and 1-3)
///   0 - 1 - 2
/// ```
fn fixed_graph() -> CsrGraph {
    let mut b = GraphBuilder::new().num_vertices(6);
    for (u, v) in [
        (0, 1),
        (1, 2),
        (3, 4),
        (4, 5),
        (0, 3),
        (1, 4),
        (2, 5),
        (0, 4),
        (1, 3),
    ] {
        b.push_edge(u, v);
    }
    b.build()
}

#[test]
fn prefabs_agree_across_engine_and_baselines_on_fixed_graph() {
    let g = fixed_graph();
    let graphzero = GraphZeroEngine::new(g.clone());
    let expansion = ExpansionEngine::new(g.clone());
    for (name, pattern) in [
        ("triangle", prefab::triangle()),
        ("rectangle", prefab::rectangle()),
        ("house", prefab::house()),
        ("clique4", prefab::clique(4)),
    ] {
        let expected = naive::count_embeddings(&pattern, &g);
        assert_eq!(engine_count(&g, &pattern), expected, "{name}: engine");
        assert_eq!(graphzero.count(&pattern), expected, "{name}: graphzero");
        assert_eq!(
            expansion.count(&pattern).count(),
            Some(expected),
            "{name}: expansion"
        );
    }
}

#[test]
fn fixed_graph_has_the_hand_counted_structure() {
    // Hand-verifiable ground truths for the fixed graph, independent of any
    // engine: 9 edges, and the triangles are exactly {0,1,4}, {0,3,4},
    // {0,1,3} and {1,3,4}.
    let g = fixed_graph();
    assert_eq!(g.num_vertices(), 6);
    assert_eq!(g.num_edges(), 9);
    assert_eq!(engine_count(&g, &prefab::path_pattern(2)), 9);
    assert_eq!(engine_count(&g, &prefab::triangle()), 4);
}
