//! Resilience end-to-end: clients driven through the seeded fault
//! injector must still observe counts bit-identical to in-process
//! execution (retries + request-ID idempotency doing their job), an
//! overloaded server must shed with a typed `RETRY_LATER` (plus a usable
//! retry-after hint) instead of dropping connections, the `HEALTH` opcode
//! must report readiness, and a protocol-v1 client must stay served by a
//! v2 server with v1-shaped replies.

use graphpi::core::config::ServeOptions;
use graphpi::core::engine::{GraphPi, PlanCache};
use graphpi::core::exec::pool::WorkerPool;
use graphpi::core::net::protocol::{self, op, CountOk, CountRequest, Frame, QueryMode, StatsOk};
use graphpi::core::net::{
    ChaosConfig, ChaosConnector, Client, ErrorCode, HealthState, NetError, RemoteCountOptions,
    RetryPolicy, RetryingClient, Server, ServerHandle, Transport,
};
use graphpi::graph::generators;
use graphpi::pattern::prefab;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Sets the drain flag when dropped so a failed assertion unwinds instead
/// of deadlocking on the accept loop (same shape as `net_serving.rs`).
struct DrainOnDrop(ServerHandle);

impl Drop for DrainOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// The retry policy every chaos client runs: generous attempts, short
/// deterministic backoff, per-client seed.
fn chaos_policy(client_index: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 16,
        initial_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
        ..RetryPolicy::default()
    }
    .with_seed(0xC0FFEE ^ client_index)
}

#[test]
fn chaos_clients_agree_with_in_process_execution() {
    const CLIENTS: u64 = 4;
    const QUERIES: usize = 50;
    let engine = GraphPi::new(generators::power_law(160, 5, 91));
    let patterns = [prefab::triangle(), prefab::house()];
    let baselines: Vec<u64> = {
        let session = engine.session();
        patterns.iter().map(|p| session.count(p).unwrap()).collect()
    };

    let pool = Arc::new(WorkerPool::new(2));
    let workers_before = pool.live_workers();
    let cache = Arc::new(PlanCache::new(8));
    let server = Server::bind_shared(
        "127.0.0.1:0",
        Arc::clone(&pool),
        cache,
        ServeOptions::default(),
    )
    .unwrap();
    let handle = server.handle().unwrap();
    let addr = handle.addr();

    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine).unwrap());

        let clients: Vec<_> = (0..CLIENTS)
            .map(|client_index| {
                let patterns = &patterns;
                scope.spawn(move || {
                    // Every connection this client dials goes through the
                    // fault injector, with faults deterministic in
                    // (seed, client, connection index).
                    let connector =
                        ChaosConnector::new(addr, ChaosConfig::gentle(0xBAD_5EED ^ client_index));
                    let probe = connector.clone();
                    let mut client = RetryingClient::new(
                        move || {
                            let transport = connector.connect()?;
                            Ok(Box::new(transport) as Box<dyn Transport + Send>)
                        },
                        chaos_policy(client_index),
                    );
                    let mut observed = Vec::with_capacity(QUERIES);
                    for query in 0..QUERIES {
                        let pattern = &patterns[query % patterns.len()];
                        let result = client
                            .count(pattern)
                            .unwrap_or_else(|e| panic!("client {client_index}: {e}"));
                        observed.push(result.count);
                    }
                    (observed, client.stats(), probe.connections())
                })
            })
            .collect();

        let mut attempts = 0u64;
        let mut retries = 0u64;
        let mut connections = 0u64;
        for (client_index, worker) in clients.into_iter().enumerate() {
            let (observed, stats, dialed) = worker.join().unwrap();
            for (query, &count) in observed.iter().enumerate() {
                assert_eq!(
                    count,
                    baselines[query % patterns.len()],
                    "client {client_index} query {query} diverged under chaos"
                );
            }
            attempts += stats.attempts;
            retries += stats.retries;
            connections += dialed;
        }
        // The gentle profile injects ~2% per wire operation; across
        // 4 x 50 queries the run must actually have been faulty, and every
        // fault must have forced a retry (attempts > queries).
        let queries = CLIENTS * QUERIES as u64;
        assert!(
            retries > 0 && attempts > queries,
            "chaos injected no faults: {attempts} attempts, {retries} retries for {queries} queries"
        );
        assert!(
            connections > CLIENTS,
            "reconnects expected after connection-killing faults, saw {connections} dials"
        );

        // The fault battery killed no workers and the server still answers.
        assert_eq!(pool.live_workers(), workers_before, "a worker died");
        let mut clean = Client::connect(addr).unwrap();
        assert_eq!(clean.count(&patterns[0]).unwrap().count, baselines[0]);
        drop(clean);
        handle.shutdown();
        serving.join().unwrap();
    });
}

/// A query slow enough to hold the single job slot while other clients
/// pile up behind it.
fn slow_count(client: &mut Client) -> u64 {
    client
        .count_with(
            &prefab::cycle_6_tri(),
            RemoteCountOptions {
                no_iep: true,
                ..RemoteCountOptions::default()
            },
        )
        .unwrap()
        .count
}

#[test]
fn overload_sheds_with_typed_retry_later_and_hint() {
    // Big enough that the slot-holding query runs for hundreds of
    // milliseconds — the saturation window the assertions below probe is
    // wide, not a race.
    let engine = GraphPi::new(generators::power_law(500, 8, 17));
    let baseline = {
        let session = engine.session();
        session.count(&prefab::house()).unwrap()
    };
    // One job slot, one wait-queue slot: the third concurrent query must
    // be shed, not queued and not disconnected.
    let pool = Arc::new(WorkerPool::with_max_in_flight(2, 1));
    let cache = Arc::new(PlanCache::new(8));
    let server = Server::bind_shared(
        "127.0.0.1:0",
        Arc::clone(&pool),
        cache,
        ServeOptions {
            max_queue_depth: 1,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let handle = server.handle().unwrap();
    let addr = handle.addr();

    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine).unwrap());

        // Occupy the slot, then park one waiter in the queue.
        let slot = scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            slow_count(&mut client)
        });
        std::thread::sleep(Duration::from_millis(40));
        let queued = scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            slow_count(&mut client)
        });
        std::thread::sleep(Duration::from_millis(40));

        // While saturated: HEALTH reports overloaded with a hint, STATS
        // shows the queue never exceeding its bound, and a fresh COUNT is
        // shed with the typed error — on a connection that stays alive.
        let mut shed = Client::connect(addr).unwrap();
        let health = shed.health().unwrap();
        assert_eq!(health.state, HealthState::Overloaded);
        assert!(health.retry_after_ms > 0, "overload must carry a hint");
        let stats = shed.stats().unwrap();
        assert!(stats.queued <= 1, "queue depth exceeded its bound");

        let error = shed.count(&prefab::house()).unwrap_err();
        let hint = match error {
            NetError::Remote {
                code: ErrorCode::RetryLater,
                retry_after_ms,
                ..
            } => retry_after_ms.expect("v2 RETRY_LATER must carry a retry-after hint"),
            other => panic!("expected RetryLater, got {other}"),
        };
        assert!(hint > 0);
        // The shed connection is still serviceable.
        shed.ping().unwrap();

        // Honoring the hint (with the retrying client) eventually lands
        // the query; nobody is lost, every answer is bit-identical.
        let mut patient = RetryingClient::connect_tcp(
            addr,
            RetryPolicy {
                max_attempts: 200,
                initial_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(10),
                ..RetryPolicy::default()
            }
            .with_seed(7),
        );
        assert_eq!(patient.count(&prefab::house()).unwrap().count, baseline);
        let retry_stats = patient.stats();
        assert!(
            retry_stats.hints_honored > 0,
            "the retrying client should have waited on at least one server hint"
        );

        assert!(slot.join().unwrap() > 0);
        assert!(queued.join().unwrap() > 0);

        let stats = shed.stats().unwrap();
        assert!(stats.overload_rejections >= 1);
        assert_eq!(stats.queued, 0, "queue must drain completely");
        // Shed queries never executed: plan-cache accounting reconciles.
        assert_eq!(stats.cache_hits + stats.cache_misses, stats.queries_total);

        drop(shed);
        handle.shutdown();
        serving.join().unwrap();
    });
}

#[test]
fn health_reports_ready_on_an_idle_server() {
    let engine = GraphPi::new(generators::power_law(120, 5, 5));
    let server = Server::bind("127.0.0.1:0", ServeOptions::default()).unwrap();
    let handle = server.handle().unwrap();
    let addr = handle.addr();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine).unwrap());
        let mut client = Client::connect(addr).unwrap();
        let health = client.health().unwrap();
        assert_eq!(health.state, HealthState::Ready);
        assert_eq!(health.retry_after_ms, 0, "ready needs no backoff hint");
        drop(client);
        handle.shutdown();
        serving.join().unwrap();
    });
}

#[test]
fn protocol_v1_clients_are_served_with_v1_replies() {
    let engine = GraphPi::new(generators::power_law(160, 5, 91));
    let baseline = {
        let session = engine.session();
        session.count(&prefab::triangle()).unwrap()
    };
    let server = Server::bind("127.0.0.1:0", ServeOptions::default()).unwrap();
    let handle = server.handle().unwrap();
    let addr = handle.addr();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine).unwrap());

        // Hand-rolled v1 session: a COUNT (no request-ID flag — v1 never
        // sets it) and a STATS, each answered with the request's version
        // byte echoed back.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let request = CountRequest {
            no_iep: false,
            hub_bitsets: false,
            deadline_ms: 0,
            request_id: 0,
            min_generation: 0,
            mode: QueryMode::Count,
            pattern: prefab::triangle().canonical_bytes(),
        };
        stream
            .write_all(&Frame::with_version(1, op::COUNT, request.encode()).encode())
            .unwrap();
        let reply = protocol::read_frame(&mut stream).unwrap();
        assert_eq!(reply.version, 1, "replies must echo the peer's version");
        assert_eq!(reply.opcode, op::COUNT_OK);
        assert_eq!(CountOk::decode(&reply.payload).unwrap().count, baseline);

        stream
            .write_all(&Frame::with_version(1, op::STATS, vec![]).encode())
            .unwrap();
        let reply = protocol::read_frame(&mut stream).unwrap();
        assert_eq!(reply.version, 1);
        assert_eq!(reply.opcode, op::STATS_OK);
        let stats = StatsOk::decode(&reply.payload).unwrap();
        assert_eq!(stats.queries_total, 1);

        drop(stream);
        handle.shutdown();
        serving.join().unwrap();
    });
}
