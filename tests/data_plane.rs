//! Data-plane agreement suite: the SIMD intersection kernels against the
//! scalar reference, and the zero-copy binary loading path against the
//! text loader.
//!
//! * Property tests pit every intersection API against the scalar kernels
//!   on adversarial inputs (empty sets, matches at SIMD block boundaries,
//!   skewed `|a| ≪ |b|`, bound clamping, values near `u32::MAX`).
//! * End-to-end tests assert **bit-identical** pattern counts with kernels
//!   forced scalar vs auto-detected, across threads × hub × IEP modes —
//!   the acceptance bar for the kernel dispatch layer.
//! * The round-trip test drives edge-list → binary conversion → mmap open
//!   and requires identical `GraphStats::fingerprint` and identical counts.
//!
//! The force-scalar knob is process-global; these tests only ever compare
//! *results* across kernel settings (which must agree at any time, from
//! any thread), so concurrent toggling cannot make them flaky.

use graphpi::core::engine::{CountOptions, GraphPi, PlanOptions};
use graphpi::graph::vertex_set;
use graphpi::graph::{generators, io, GraphStats};
use graphpi::pattern::prefab;
use proptest::prelude::*;

/// Runs `f` with the kernels pinned scalar, then auto, and returns both.
fn under_both_kernels<T>(mut f: impl FnMut() -> T) -> (T, T) {
    vertex_set::set_force_scalar(true);
    let scalar = f();
    vertex_set::set_force_scalar(false);
    let auto = f();
    (scalar, auto)
}

fn assert_kernels_agree<T: PartialEq + std::fmt::Debug>(f: impl FnMut() -> T, label: &str) {
    let (scalar, auto) = under_both_kernels(f);
    assert_eq!(scalar, auto, "scalar and auto kernels disagree: {label}");
}

#[test]
fn adversarial_fixed_cases_agree() {
    let empty: Vec<u32> = vec![];
    let one = vec![7u32];
    // Matches exactly at every 4- and 8-lane block boundary.
    let aligned: Vec<u32> = (0..512u32).map(|i| i * 2).collect();
    let boundary: Vec<u32> = (0..512u32)
        .map(|i| {
            if i % 4 == 3 || i % 8 == 7 {
                i * 2
            } else {
                i * 2 + 1
            }
        })
        .collect();
    // Skewed inputs that trigger the galloping kernels (ratio >= 32).
    let large: Vec<u32> = (0..40_000u32).collect();
    let sparse: Vec<u32> = (0..40_000u32).step_by(1021).collect();
    // Unsigned-compare hazard: values with the sign bit set.
    let high: Vec<u32> = (0..300u32).map(|i| u32::MAX - 7 * (300 - i)).collect();
    let high_b: Vec<u32> = (0..300u32).map(|i| u32::MAX - 5 * (450 - i)).collect();

    let cases: Vec<(&str, &[u32], &[u32])> = vec![
        ("empty-empty", &empty, &empty),
        ("empty-large", &empty, &large),
        ("singleton-hit", &one, &aligned),
        ("identical", &aligned, &aligned),
        ("block-boundary", &aligned, &boundary),
        ("skewed", &sparse, &large),
        ("sign-bit", &high, &high_b),
    ];
    for (label, a, b) in cases {
        assert_kernels_agree(|| vertex_set::intersect(a, b), label);
        assert_kernels_agree(|| vertex_set::intersect(b, a), label);
        assert_kernels_agree(|| vertex_set::intersect_count(a, b), label);
        for bound in [0u32, 1, 500, u32::MAX] {
            assert_kernels_agree(|| vertex_set::intersect_count_below(a, b, bound), label);
        }
    }
}

fn sorted_set(max: u32, len: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::btree_set(0..max, 0..len).prop_map(|s| s.into_iter().collect::<Vec<_>>())
}

proptest! {
    /// Randomised agreement across every public intersection API. Dense
    /// value ranges force merge kernels; comparing a small set against a
    /// large one exercises galloping.
    #[test]
    fn prop_simd_agrees_with_scalar(
        a in sorted_set(4_000, 400),
        b in sorted_set(4_000, 400),
        small in sorted_set(40_000, 12),
        bound in 0u32..4_000,
    ) {
        let large: Vec<u32> = (0..40_000u32).step_by(7).collect();
        let (s, v) = under_both_kernels(|| {
            (
                vertex_set::intersect(&a, &b),
                vertex_set::intersect_count(&a, &b),
                vertex_set::intersect_count_below(&a, &b, bound),
                vertex_set::intersect_many(&[&a, &b, &small]),
                vertex_set::intersect(&small, &large),
                vertex_set::intersect_count(&small, &large),
            )
        });
        prop_assert_eq!(s, v);
    }
}

fn count_with(engine: &GraphPi, pattern: &graphpi::pattern::Pattern, options: CountOptions) -> u64 {
    let plan = engine.plan(pattern, PlanOptions::default()).expect("plan");
    engine.execute_count(&plan.plan, options)
}

/// The acceptance sweep: counts must be bit-identical with kernels forced
/// scalar vs auto-detected, across threads × hub × IEP modes.
#[test]
fn end_to_end_counts_agree_scalar_vs_auto() {
    let graph = generators::power_law(160, 5, 77);
    let engine = GraphPi::new(graph);
    for (name, pattern) in [
        ("triangle", prefab::triangle()),
        ("rectangle", prefab::rectangle()),
        ("house", prefab::house()),
    ] {
        for threads in [1usize, 4] {
            for hub_bitsets in [false, true] {
                for use_iep in [false, true] {
                    let base = CountOptions {
                        use_iep,
                        threads,
                        prefix_depth: None,
                        hub_bitsets,
                        scalar_kernels: false,
                    };
                    let scalar_opts = CountOptions {
                        scalar_kernels: true,
                        ..base
                    };
                    let scalar = count_with(&engine, &pattern, scalar_opts);
                    // `scalar_kernels` only ever *sets* the process-global
                    // pin; release it explicitly before the auto run.
                    vertex_set::set_force_scalar(false);
                    let auto = count_with(&engine, &pattern, base);
                    assert_eq!(
                        scalar, auto,
                        "{name}: threads={threads} hubs={hub_bitsets} iep={use_iep}"
                    );
                }
            }
        }
    }
}

/// Edge list → binary conversion → zero-copy mmap open must preserve the
/// stats fingerprint and every pattern count (the CLI `convert` round
/// trip, exercised at the library level).
#[test]
fn convert_round_trip_preserves_fingerprint_and_counts() {
    let dir = std::env::temp_dir().join(format!("graphpi_data_plane_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let text_path = dir.join("round_trip.txt");
    let bin_path = dir.join("round_trip.bin");

    let original = generators::power_law(220, 4, 99);
    io::save_edge_list(&original, &text_path).unwrap();

    // The text loader re-interns labels, so compare by fingerprint (and
    // counts below), not by graph equality.
    let text_loaded = io::load_edge_list(&text_path).unwrap();
    io::save_binary(&text_loaded, &bin_path).unwrap();
    let mapped = io::load_binary_mmap(&bin_path).unwrap();
    #[cfg(all(unix, target_pointer_width = "64"))]
    assert!(mapped.is_memory_mapped());
    assert_eq!(mapped, text_loaded);

    let fp_original = GraphStats::compute(&original).fingerprint();
    let fp_text = GraphStats::compute(&text_loaded).fingerprint();
    let fp_mapped = GraphStats::compute(&mapped).fingerprint();
    assert_eq!(fp_original, fp_text);
    assert_eq!(fp_text, fp_mapped);

    let engine_text = GraphPi::new(text_loaded);
    let engine_mapped = GraphPi::new(mapped);
    for (name, pattern) in [
        ("triangle", prefab::triangle()),
        ("house", prefab::house()),
        ("p1", prefab::p1()),
    ] {
        for options in [
            CountOptions::default(),
            CountOptions {
                threads: 2,
                hub_bitsets: true,
                ..CountOptions::default()
            },
        ] {
            assert_eq!(
                count_with(&engine_text, &pattern, options),
                count_with(&engine_mapped, &pattern, options),
                "{name} counts diverge between text-loaded and mmap-loaded graphs"
            );
        }
    }
    std::fs::remove_file(&text_path).ok();
    std::fs::remove_file(&bin_path).ok();
}

/// Heavier randomized sweep for the tier-2 job.
#[test]
#[ignore]
fn end_to_end_scalar_auto_agreement_heavy() {
    for seed in [1u64, 2, 3] {
        let graph = generators::power_law(400, 6, seed);
        let engine = GraphPi::new(graph);
        for (_, pattern) in prefab::evaluation_patterns() {
            for threads in [1usize, 2, 8] {
                let base = CountOptions {
                    threads,
                    hub_bitsets: seed % 2 == 0,
                    ..CountOptions::default()
                };
                let scalar = count_with(
                    &engine,
                    &pattern,
                    CountOptions {
                        scalar_kernels: true,
                        ..base
                    },
                );
                vertex_set::set_force_scalar(false);
                let auto = count_with(&engine, &pattern, base);
                assert_eq!(scalar, auto);
            }
        }
    }
}
