//! Replication & failover end to end, in process: a WAL-backed primary
//! fans committed records out to a replica applying them through its own
//! durable engine, a failover-aware client routes writes through
//! `NOT_PRIMARY` redirects and spreads guarded reads, a chaos proxy
//! between the pair tears the stream mid-batch and the replica still
//! converges bit-identically, and an explicit promotion seals the stream
//! and flips the replica to a write-accepting primary with no generation
//! gap.

use graphpi::core::config::ServeOptions;
use graphpi::core::net::{ChaosConfig, ChaosProxy};
use graphpi::core::net::{
    Client, ErrorCode, FailoverClient, NetError, RemoteCountOptions, RemoteUpdateOptions, ReplRole,
    ReplState, RetryPolicy, Server,
};
use graphpi::core::DynamicEngine;
use graphpi::graph::generators;
use graphpi::graph::DurableGraphOptions;
use graphpi::pattern::prefab;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const N: u32 = 110;

/// Unique-per-test temp dir (shared machines run suites concurrently).
fn temp_dir(label: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("graphpi_repl_{label}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Opens a fresh durable engine over the shared base graph.
fn durable_engine(dir: &std::path::Path, name: &str) -> DynamicEngine {
    let wal = dir.join(name);
    std::fs::remove_file(&wal).ok();
    let mut ckpt = wal.as_os_str().to_os_string();
    ckpt.push(".ckpt");
    std::fs::remove_file(std::path::PathBuf::from(ckpt)).ok();
    let (engine, _) = DynamicEngine::durable(
        generators::power_law(N as usize, 4, 97),
        &wal,
        DurableGraphOptions::default(),
    )
    .unwrap();
    engine
}

type EdgeList = Vec<(u32, u32)>;

/// The deterministic mutation sequence every test commits: inserts and
/// deletes biased toward hubs so pattern counts really move.
fn round_ops(round: u32) -> (EdgeList, EdgeList) {
    let inserts = (0..4)
        .map(|k| {
            let u = (round * 5 + k) % N;
            (u, (u * 7 + 11 + round) % N)
        })
        .collect();
    let deletes = (0..2)
        .map(|k| {
            let u = (round * 3 + k + 1) % N;
            (u, (u + 1 + round) % N)
        })
        .collect();
    (inserts, deletes)
}

/// Spins until `predicate` holds or the deadline passes.
fn wait_until(what: &str, deadline: Duration, mut predicate: impl FnMut() -> bool) {
    let start = Instant::now();
    while !predicate() {
        assert!(start.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn retry_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        initial_backoff: Duration::from_millis(5),
        ..RetryPolicy::default()
    }
}

#[test]
fn failover_client_and_replica_serve_guarded_reads() {
    let dir = temp_dir("e2e");
    let primary_engine = durable_engine(&dir, "primary.wal");
    let replica_engine = durable_engine(&dir, "replica.wal");
    let pattern = prefab::triangle();

    let primary_server = Server::bind("127.0.0.1:0", ServeOptions::default()).unwrap();
    let primary_addr = primary_server.local_addr().unwrap();
    let primary_handle = primary_server.handle().unwrap();
    let replica_server = Server::bind("127.0.0.1:0", ServeOptions::default()).unwrap();
    let replica_addr = replica_server.local_addr().unwrap();
    let replica_handle = replica_server.handle().unwrap();

    let repl = ReplState::replica(&primary_addr.to_string());
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let primary_serving = scope.spawn(|| primary_server.serve_dynamic(&primary_engine));
        let replica_repl = std::sync::Arc::clone(&repl);
        let replica_serving =
            scope.spawn(|| replica_server.serve_dynamic_with_repl(&replica_engine, replica_repl));
        let apply_loop = scope.spawn(|| {
            graphpi::core::net::run_replication(primary_addr, &replica_engine, &repl, &stop)
        });

        // The replica comes first in the endpoint list, so the very
        // first write exercises the NOT_PRIMARY redirect.
        let mut client =
            FailoverClient::connect(vec![replica_addr, primary_addr], retry_policy(), true);
        const ROUNDS: u32 = 6;
        for round in 0..ROUNDS {
            let (inserts, deletes) = round_ops(round);
            let ok = client.update(&inserts, &deletes).unwrap();
            assert_eq!(ok.generation, u64::from(round) + 1);
        }
        assert_eq!(client.last_write_generation(), u64::from(ROUNDS));
        assert_eq!(client.primary_endpoint(), primary_addr);
        assert!(
            client.stats().redirects >= 1,
            "the first write must have followed a NOT_PRIMARY redirect: {:?}",
            client.stats()
        );

        // Read-your-writes: every read is guarded at the committed
        // generation, so the replica answers only once caught up — and
        // then bit-identically to the primary.
        let expected = Client::connect(primary_addr)
            .unwrap()
            .count(&pattern)
            .unwrap()
            .count;
        for query in 0..6 {
            if query > 0 {
                client.rotate_reads();
            }
            assert_eq!(client.count(&pattern).unwrap().count, expected);
        }
        let reads = &client.stats().reads_per_endpoint;
        assert_eq!(reads.iter().sum::<u64>(), 6);
        assert!(
            reads.iter().all(|&per_endpoint| per_endpoint > 0),
            "round-robin reads must touch every endpoint: {reads:?}"
        );

        // Health tells the truth about roles, and the replica names its
        // primary when refusing a direct write.
        let health = Client::connect(replica_addr).unwrap().health().unwrap();
        assert_eq!(health.role, ReplRole::Replica);
        let health = Client::connect(primary_addr).unwrap().health().unwrap();
        assert_eq!(health.role, ReplRole::Primary);
        let error = Client::connect(replica_addr)
            .unwrap()
            .update_with(&[(0, 1)], &[], RemoteUpdateOptions::default())
            .unwrap_err();
        match error {
            NetError::Remote { code, message, .. } => {
                assert_eq!(code, ErrorCode::NotPrimary);
                assert_eq!(message, primary_addr.to_string());
            }
            other => panic!("expected NOT_PRIMARY, got {other:?}"),
        }
        // The v2 stats snapshot carries the same role.
        let stats = Client::connect(replica_addr).unwrap().stats().unwrap();
        assert_eq!(stats.repl_role, ReplRole::Replica);
        stop.store(true, Ordering::Release);
        primary_handle.shutdown();
        replica_handle.shutdown();
        primary_serving.join().unwrap().unwrap();
        replica_serving.join().unwrap().unwrap();
        apply_loop.join().unwrap();
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lagging_replica_honors_generation_floors() {
    let dir = temp_dir("floor");
    let primary_engine = durable_engine(&dir, "primary.wal");
    let replica_engine = durable_engine(&dir, "replica.wal");
    let pattern = prefab::triangle();

    let primary_server = Server::bind("127.0.0.1:0", ServeOptions::default()).unwrap();
    let primary_addr = primary_server.local_addr().unwrap();
    let primary_handle = primary_server.handle().unwrap();
    let replica_server = Server::bind("127.0.0.1:0", ServeOptions::default()).unwrap();
    let replica_addr = replica_server.local_addr().unwrap();
    let replica_handle = replica_server.handle().unwrap();

    let repl = ReplState::replica(&primary_addr.to_string());
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let primary_serving = scope.spawn(|| primary_server.serve_dynamic(&primary_engine));
        let replica_repl = std::sync::Arc::clone(&repl);
        let replica_serving =
            scope.spawn(|| replica_server.serve_dynamic_with_repl(&replica_engine, replica_repl));

        // Commit to generation 3 on the primary while the replica's
        // apply loop is deliberately NOT running: the replica lags.
        let mut writer = Client::connect(primary_addr).unwrap();
        for round in 0..3 {
            let (inserts, deletes) = round_ops(round);
            writer
                .update_with(&inserts, &deletes, RemoteUpdateOptions::default())
                .unwrap();
        }
        assert_eq!(primary_engine.generation(), 3);
        assert_eq!(replica_engine.generation(), 0);

        // A floored read on the lagging replica sheds with RETRY_LATER
        // (plus a usable hint) instead of serving stale data...
        let floored = RemoteCountOptions {
            min_generation: 3,
            ..RemoteCountOptions::default()
        };
        let error = Client::connect(replica_addr)
            .unwrap()
            .count_with(&pattern, floored)
            .unwrap_err();
        match error {
            NetError::Remote {
                code,
                retry_after_ms,
                ..
            } => {
                assert_eq!(code, ErrorCode::RetryLater);
                assert!(retry_after_ms.is_some(), "the shed must carry a hint");
            }
            other => panic!("expected RETRY_LATER, got {other:?}"),
        }
        // ...while an unfloored read happily serves the stale snapshot.
        let stale = Client::connect(replica_addr)
            .unwrap()
            .count(&pattern)
            .unwrap()
            .count;
        let fresh = Client::connect(primary_addr)
            .unwrap()
            .count(&pattern)
            .unwrap()
            .count;
        assert_ne!(stale, fresh, "the mutation sequence must move the count");

        // Start replication; once the replica catches up, the same
        // floored read succeeds and matches the primary bit-identically.
        let apply_loop = scope.spawn(|| {
            graphpi::core::net::run_replication(primary_addr, &replica_engine, &repl, &stop)
        });
        wait_until("replica catch-up", Duration::from_secs(20), || {
            replica_engine.generation() == 3
        });
        let caught_up = Client::connect(replica_addr)
            .unwrap()
            .count_with(&pattern, floored)
            .unwrap();
        assert_eq!(caught_up.count, fresh);
        // Lag reporting drops back to zero in HEALTH.
        let health = Client::connect(replica_addr).unwrap().health().unwrap();
        assert_eq!(health.replication_lag, 0);

        stop.store(true, Ordering::Release);
        primary_handle.shutdown();
        replica_handle.shutdown();
        primary_serving.join().unwrap().unwrap();
        replica_serving.join().unwrap().unwrap();
        apply_loop.join().unwrap();
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_streams_resume_and_converge_bit_identically() {
    let dir = temp_dir("torn");
    let primary_engine = durable_engine(&dir, "primary.wal");
    let replica_engine = durable_engine(&dir, "replica.wal");
    let pattern = prefab::house();

    let primary_server = Server::bind("127.0.0.1:0", ServeOptions::default()).unwrap();
    let primary_addr = primary_server.local_addr().unwrap();
    let primary_handle = primary_server.handle().unwrap();

    // An aggressive byte-level chaos proxy between replica and primary:
    // stalls, mid-frame truncations (which kill the pair), resets.
    let proxy = ChaosProxy::bind(
        "127.0.0.1:0",
        primary_addr,
        ChaosConfig {
            seed: 0xBAD_5EED,
            stall_per_mille: 60,
            stall_ms: 1,
            reset_per_mille: 60,
            partial_write_per_mille: 60,
            ..ChaosConfig::default()
        },
    )
    .unwrap();
    let proxy_addr: SocketAddr = proxy.local_addr().unwrap();
    // The proxy serves until the process exits; its accept thread is
    // deliberately detached, like the standalone binary it mirrors.
    std::thread::spawn(move || proxy.run());

    let repl = ReplState::replica(&primary_addr.to_string());
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let primary_serving = scope.spawn(|| primary_server.serve_dynamic(&primary_engine));

        // Deterministic torn subscription first: subscribe raw, read one
        // REPL_BATCH, then vanish without acking — the primary must shrug
        // the dead subscriber off and serve the next one from scratch.
        {
            use graphpi::core::net::protocol::{op, Frame, ReplSubscribe};
            use graphpi::core::net::{TcpTransport, Transport};
            let (inserts, deletes) = round_ops(0);
            Client::connect(primary_addr)
                .unwrap()
                .update_with(&inserts, &deletes, RemoteUpdateOptions::default())
                .unwrap();
            let mut torn = TcpTransport::connect(primary_addr).unwrap();
            torn.send(&Frame::new(
                op::REPL_SUBSCRIBE,
                ReplSubscribe::default().encode(),
            ))
            .unwrap();
            let frame = torn.recv().unwrap();
            assert_eq!(frame.opcode, op::REPL_BATCH);
            drop(torn); // no ack: the stream is cut mid-exchange
        }

        let apply_loop = scope.spawn(|| {
            graphpi::core::net::run_replication(proxy_addr, &replica_engine, &repl, &stop)
        });

        // Commit a long mutation sequence while the chaos proxy mangles
        // the stream underneath the apply loop.
        let mut writer = Client::connect(primary_addr).unwrap();
        const ROUNDS: u32 = 24;
        for round in 1..ROUNDS {
            let (inserts, deletes) = round_ops(round);
            writer
                .update_with(&inserts, &deletes, RemoteUpdateOptions::default())
                .unwrap();
            std::thread::sleep(Duration::from_millis(5));
        }
        let target = primary_engine.generation();
        wait_until("chaos-path convergence", Duration::from_secs(60), || {
            replica_engine.generation() == target
        });

        // Bit-identical convergence: same generation, same counts on
        // multiple patterns.
        assert_eq!(replica_engine.generation(), primary_engine.generation());
        for pattern in [&pattern, &prefab::triangle(), &prefab::rectangle()] {
            assert_eq!(
                replica_engine.pin().engine().count(pattern).unwrap(),
                primary_engine.pin().engine().count(pattern).unwrap(),
            );
        }

        stop.store(true, Ordering::Release);
        let report = apply_loop.join().unwrap();
        assert!(
            report.batches_applied >= 1,
            "the stream applied through the chaos proxy: {report:?}"
        );
        primary_handle.shutdown();
        primary_serving.join().unwrap().unwrap();
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn promotion_seals_the_stream_and_continues_the_generations() {
    let dir = temp_dir("promote");
    let primary_engine = durable_engine(&dir, "primary.wal");
    let replica_engine = durable_engine(&dir, "replica.wal");

    let primary_server = Server::bind("127.0.0.1:0", ServeOptions::default()).unwrap();
    let primary_addr = primary_server.local_addr().unwrap();
    let primary_handle = primary_server.handle().unwrap();
    let replica_server = Server::bind("127.0.0.1:0", ServeOptions::default()).unwrap();
    let replica_addr = replica_server.local_addr().unwrap();
    let replica_handle = replica_server.handle().unwrap();

    let repl = ReplState::replica(&primary_addr.to_string());
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let primary_serving = scope.spawn(|| primary_server.serve_dynamic(&primary_engine));
        let replica_repl = std::sync::Arc::clone(&repl);
        let replica_serving =
            scope.spawn(|| replica_server.serve_dynamic_with_repl(&replica_engine, replica_repl));
        let apply_loop = scope.spawn(|| {
            graphpi::core::net::run_replication(primary_addr, &replica_engine, &repl, &stop)
        });

        // Commit, quiesce, wait for full catch-up (promotion with writes
        // in flight would strand them on the old primary).
        let mut writer = Client::connect(primary_addr).unwrap();
        const ROUNDS: u32 = 5;
        for round in 0..ROUNDS {
            let (inserts, deletes) = round_ops(round);
            writer
                .update_with(&inserts, &deletes, RemoteUpdateOptions::default())
                .unwrap();
        }
        wait_until("pre-promotion catch-up", Duration::from_secs(20), || {
            replica_engine.generation() == u64::from(ROUNDS)
        });

        // Promote over the wire. The reply carries the exact generation
        // the replica was promoted at: nothing lost, nothing invented.
        let ok = Client::connect(replica_addr).unwrap().promote().unwrap();
        assert_eq!(ok.generation, u64::from(ROUNDS));
        let report = apply_loop.join().unwrap();
        assert!(report.promoted, "the apply loop sealed and flipped");
        let health = Client::connect(replica_addr).unwrap().health().unwrap();
        assert_eq!(health.role, ReplRole::Primary);

        // The promoted server now accepts writes, continuing the
        // generation sequence without a gap.
        let ok = Client::connect(replica_addr)
            .unwrap()
            .update_with(&[(1, 3)], &[], RemoteUpdateOptions::default())
            .unwrap();
        assert_eq!(ok.generation, u64::from(ROUNDS) + 1);
        // Promoting a primary is idempotent at the protocol level.
        let again = Client::connect(replica_addr).unwrap().promote().unwrap();
        assert_eq!(again.generation, u64::from(ROUNDS) + 1);

        stop.store(true, Ordering::Release);
        primary_handle.shutdown();
        replica_handle.shutdown();
        primary_serving.join().unwrap().unwrap();
        replica_serving.join().unwrap().unwrap();
    });
    std::fs::remove_dir_all(&dir).ok();
}
