//! Agreement tests for the work-stealing parallel runtime: every
//! combination of thread count, batch size, counting mode, and hub
//! acceleration must return counts bit-identical to the sequential
//! interpreter, on prefab patterns and on randomly generated graphs.
//!
//! The default-sized tests run in tier-1 CI; the exhaustive sweeps are
//! `#[ignore]`d and run by the tier-2 job (`cargo test --release -- --ignored`).

use graphpi::core::config::Configuration;
use graphpi::core::exec::{interp, parallel};
use graphpi::core::schedule::efficient_schedules;
use graphpi::graph::builder::GraphBuilder;
use graphpi::graph::hub::{HubGraph, HubOptions};
use graphpi::graph::{generators, CsrGraph};
use graphpi::pattern::prefab;
use graphpi::pattern::restriction::{generate_restriction_sets, GenerationOptions};
use parallel::{count_parallel, count_parallel_with_hubs, CountMode, ParallelOptions};
use proptest::prelude::*;

fn plan_for(pattern: graphpi::pattern::Pattern) -> graphpi::core::config::ExecutionPlan {
    let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
    let schedules = efficient_schedules(&pattern);
    Configuration::new(pattern, schedules[0].clone(), sets[0].clone()).compile()
}

fn agreement_graphs(scale: usize) -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("power-law", generators::power_law(scale, 5, 11)),
        ("uniform", generators::erdos_renyi(scale, scale * 4, 22)),
        (
            "dense-power-law",
            generators::power_law(scale * 2 / 3, 8, 33),
        ),
    ]
}

/// The acceptance sweep: `count_parallel` (and its hub-accelerated variant)
/// must match the sequential interpreter on every prefab evaluation pattern,
/// across ≥3 thread counts and ≥3 generated graphs, in both counting modes.
fn run_agreement_sweep(scale: usize, thread_counts: &[usize]) {
    for (gname, graph) in agreement_graphs(scale) {
        let hubs = HubGraph::build(
            &graph,
            HubOptions {
                max_hubs: 64,
                min_degree: 4,
            },
        );
        for (pname, pattern) in prefab::evaluation_patterns() {
            let plan = plan_for(pattern);
            let sequential = interp::count_embeddings(&plan, &graph);
            for &threads in thread_counts {
                for mode in [CountMode::Enumerate, CountMode::Iep] {
                    let options = ParallelOptions {
                        threads,
                        mode,
                        ..Default::default()
                    };
                    let expected = match mode {
                        CountMode::Enumerate => sequential,
                        CountMode::Iep => {
                            graphpi::core::exec::iep::count_embeddings_iep(&plan, &graph)
                        }
                    };
                    assert_eq!(
                        count_parallel(&plan, &graph, options),
                        expected,
                        "{pname} on {gname}: {threads} threads, {mode:?}, no hubs"
                    );
                    assert_eq!(
                        count_parallel_with_hubs(&plan, &hubs, options),
                        expected,
                        "{pname} on {gname}: {threads} threads, {mode:?}, hubs"
                    );
                    // IEP totals equal plain enumeration for these plans.
                    assert_eq!(expected, sequential, "{pname} IEP vs enumeration");
                }
            }
        }
    }
}

#[test]
fn parallel_agrees_with_sequential_across_threads_graphs_and_hubs() {
    run_agreement_sweep(90, &[1, 2, 4]);
}

#[test]
#[ignore = "tier-2: exhaustive agreement sweep on larger graphs"]
fn parallel_agreement_sweep_heavy() {
    run_agreement_sweep(250, &[1, 2, 4, 8, 16]);
}

#[test]
fn batch_sizes_and_prefix_depths_do_not_change_counts() {
    let graph = generators::power_law(120, 5, 44);
    for pattern in [prefab::rectangle(), prefab::house()] {
        let plan = plan_for(pattern);
        let sequential = interp::count_embeddings(&plan, &graph);
        for batch_size in [1, 7, 64, 1024] {
            for prefix_depth in [None, Some(1), Some(2), Some(3)] {
                let got = count_parallel(
                    &plan,
                    &graph,
                    ParallelOptions {
                        threads: 4,
                        batch_size,
                        prefix_depth,
                        ..Default::default()
                    },
                );
                assert_eq!(
                    got, sequential,
                    "batch {batch_size}, depth {prefix_depth:?}"
                );
            }
        }
    }
}

#[test]
fn hub_option_through_parallel_options_matches_plain() {
    let graph = generators::power_law(150, 6, 55);
    let plan = plan_for(prefab::house());
    let plain = count_parallel(
        &plan,
        &graph,
        ParallelOptions {
            threads: 4,
            ..Default::default()
        },
    );
    let hubbed = count_parallel(
        &plan,
        &graph,
        ParallelOptions {
            threads: 4,
            hub_bitsets: true,
            ..Default::default()
        },
    );
    assert_eq!(plain, hubbed);
}

/// Strategy: a random simple graph with `4..max_vertices` vertices.
fn arb_graph(max_vertices: usize, max_edges: usize) -> impl Strategy<Value = CsrGraph> {
    (
        4..max_vertices,
        proptest::collection::vec((0usize..max_vertices, 0usize..max_vertices), 0..max_edges),
    )
        .prop_map(|(n, edges)| {
            let mut builder = GraphBuilder::new().num_vertices(n);
            for (u, v) in edges {
                if u != v && u < n && v < n {
                    builder.push_edge(u as u32, v as u32);
                }
            }
            builder.build()
        })
}

/// Strategy: a random connected pattern with 3..=5 vertices built by
/// spanning-tree + extra edges.
fn arb_pattern() -> impl Strategy<Value = graphpi::pattern::Pattern> {
    (3usize..=5)
        .prop_flat_map(|n| {
            let extra = proptest::collection::vec((0usize..n, 0usize..n), 0..(n * 2));
            (Just(n), extra)
        })
        .prop_map(|(n, extra)| {
            let mut edges: Vec<(usize, usize)> = (1..n).map(|v| (v - 1, v)).collect();
            for (u, v) in extra {
                if u != v {
                    edges.push((u.min(v), u.max(v)));
                }
            }
            graphpi::pattern::Pattern::new(n, &edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn prop_parallel_matches_sequential_on_random_graphs(
        graph in arb_graph(28, 90),
        pattern in arb_pattern(),
        threads in 1usize..=4,
        batch_size in 1usize..=64,
        hub_sel in 0usize..2,
    ) {
        let hub = hub_sel == 1;
        let plan = plan_for(pattern);
        let sequential = interp::count_embeddings(&plan, &graph);
        let got = count_parallel(
            &plan,
            &graph,
            ParallelOptions {
                threads,
                batch_size,
                hub_bitsets: hub,
                ..Default::default()
            },
        );
        prop_assert_eq!(got, sequential);
    }

    #[test]
    fn prop_parallel_iep_matches_sequential_iep(
        graph in arb_graph(24, 70),
        pattern in arb_pattern(),
        threads in 1usize..=4,
    ) {
        let plan = plan_for(pattern);
        let expected = graphpi::core::exec::iep::count_embeddings_iep(&plan, &graph);
        let got = count_parallel(
            &plan,
            &graph,
            ParallelOptions {
                threads,
                mode: CountMode::Iep,
                ..Default::default()
            },
        );
        prop_assert_eq!(got, expected);
    }
}
