//! Property-based tests over random graphs and patterns: the engine's count
//! must always match the naive ground truth, restriction sets must always be
//! complete, and counting must be invariant to the execution strategy.

use graphpi::baseline::naive;
use graphpi::core::config::Configuration;
use graphpi::core::engine::{CountOptions, GraphPi, PlanOptions};
use graphpi::core::exec::{iep, interp};
use graphpi::core::schedule::efficient_schedules;
use graphpi::graph::builder::GraphBuilder;
use graphpi::graph::CsrGraph;
use graphpi::pattern::prefab;
use graphpi::pattern::restriction::{generate_restriction_sets, validate, GenerationOptions};
use graphpi::pattern::Pattern;
use proptest::prelude::*;

/// Strategy: a random simple graph with up to `max_vertices` vertices.
fn arb_graph(max_vertices: usize, max_edges: usize) -> impl Strategy<Value = CsrGraph> {
    (
        4..max_vertices,
        proptest::collection::vec((0usize..max_vertices, 0usize..max_vertices), 0..max_edges),
    )
        .prop_map(|(n, edges)| {
            let mut builder = GraphBuilder::new().num_vertices(n);
            for (u, v) in edges {
                if u != v && u < n && v < n {
                    builder.push_edge(u as u32, v as u32);
                }
            }
            builder.build()
        })
}

/// Strategy: a random connected pattern with 3..=5 vertices built by
/// spanning-tree + extra edges.
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    (3usize..=5)
        .prop_flat_map(|n| {
            let extra = proptest::collection::vec((0usize..n, 0usize..n), 0..(n * 2));
            (Just(n), extra)
        })
        .prop_map(|(n, extra)| {
            let mut edges: Vec<(usize, usize)> = (1..n).map(|v| (v - 1, v)).collect();
            for (u, v) in extra {
                if u != v {
                    edges.push((u.min(v), u.max(v)));
                }
            }
            Pattern::new(n, &edges)
        })
}

proptest! {
    // Tier-1 sizing: enough cases to catch regressions while keeping the
    // default `cargo test -q` fast; the tier-2 job runs the `_heavy`
    // variants below with more cases on bigger inputs.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn engine_matches_naive_ground_truth(graph in arb_graph(24, 80), pattern in arb_pattern()) {
        let expected = naive::count_embeddings(&pattern, &graph);
        let engine = GraphPi::new(graph);
        let got = engine
            .count_with(&pattern, PlanOptions::default(), CountOptions::sequential_enumeration())
            .unwrap();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn iep_matches_enumeration_for_random_inputs(graph in arb_graph(22, 70), pattern in arb_pattern()) {
        let engine = GraphPi::new(graph);
        let plan = engine.plan(&pattern, PlanOptions::default()).unwrap();
        let enumerated = engine.execute_count(&plan.plan, CountOptions::sequential_enumeration());
        let with_iep = engine.execute_count(
            &plan.plan,
            CountOptions { use_iep: true, threads: 1, ..CountOptions::default() },
        );
        prop_assert_eq!(enumerated, with_iep);
    }

    #[test]
    fn generated_restriction_sets_are_always_complete(pattern in arb_pattern()) {
        let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
        prop_assert!(!sets.is_empty());
        for set in sets.iter().take(8) {
            prop_assert!(validate(&pattern, set));
        }
    }

    #[test]
    fn every_efficient_schedule_counts_the_same(graph in arb_graph(18, 50), pattern in arb_pattern()) {
        let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
        let schedules = efficient_schedules(&pattern);
        let mut counts = std::collections::BTreeSet::new();
        for schedule in schedules.into_iter().take(4) {
            let plan = Configuration::new(pattern.clone(), schedule, sets[0].clone()).compile();
            counts.insert(interp::count_embeddings(&plan, &graph));
        }
        prop_assert_eq!(counts.len(), 1);
    }

    #[test]
    fn iep_term_never_negative_and_bounded(graph in arb_graph(20, 60), pattern in arb_pattern()) {
        // The IEP count can never exceed the unrestricted mapping count.
        let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
        let schedules = efficient_schedules(&pattern);
        let plan = Configuration::new(pattern.clone(), schedules[0].clone(), sets[0].clone()).compile();
        let iep_count = iep::count_embeddings_iep(&plan, &graph);
        let mappings = naive::count_mappings(&pattern, &graph);
        prop_assert!(iep_count <= mappings);
    }
}

mod heavy {
    //! Full-size property runs, tier-2 only (`cargo test --release -- --ignored`).
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        #[ignore = "tier-2: full-size property run"]
        fn engine_matches_naive_ground_truth_heavy(
            graph in arb_graph(32, 140),
            pattern in arb_pattern(),
        ) {
            let expected = naive::count_embeddings(&pattern, &graph);
            let engine = GraphPi::new(graph);
            let got = engine
                .count_with(&pattern, PlanOptions::default(), CountOptions::sequential_enumeration())
                .unwrap();
            prop_assert_eq!(got, expected);
        }

        #[test]
        #[ignore = "tier-2: full-size property run"]
        fn iep_matches_enumeration_heavy(graph in arb_graph(30, 120), pattern in arb_pattern()) {
            let engine = GraphPi::new(graph);
            let plan = engine.plan(&pattern, PlanOptions::default()).unwrap();
            let enumerated = engine.execute_count(&plan.plan, CountOptions::sequential_enumeration());
            let with_iep = engine.execute_count(
                &plan.plan,
                CountOptions { use_iep: true, threads: 1, ..CountOptions::default() },
            );
            prop_assert_eq!(enumerated, with_iep);
        }
    }
}

#[test]
fn prefab_patterns_always_plan_on_structured_graphs() {
    for graph in [
        graphpi::graph::generators::complete(8),
        graphpi::graph::generators::cycle(12),
        graphpi::graph::generators::star(12),
        graphpi::graph::generators::path(12),
    ] {
        let engine = GraphPi::new(graph);
        for (name, pattern) in prefab::evaluation_patterns() {
            let plan = engine.plan(&pattern, PlanOptions::default());
            assert!(plan.is_ok(), "{name} failed to plan");
        }
    }
}
