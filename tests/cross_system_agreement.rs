//! Cross-system agreement: GraphPi (all execution modes), the rebuilt
//! GraphZero baseline, the expansion baseline and the naive ground truth
//! must report identical counts on every workload they can all run.

use graphpi::baseline::expansion::{ExpansionEngine, ExpansionOutcome};
use graphpi::baseline::{naive, GraphZeroEngine};
use graphpi::core::engine::{CountOptions, GraphPi, PlanOptions};
use graphpi::graph::generators;
use graphpi::pattern::prefab;

fn all_counts_agree(
    graph: graphpi::graph::CsrGraph,
    pattern: &graphpi::pattern::Pattern,
    name: &str,
) {
    let expected = naive::count_embeddings(pattern, &graph);

    let graphzero = GraphZeroEngine::new(graph.clone());
    assert_eq!(
        graphzero.count(pattern),
        expected,
        "GraphZero disagrees on {name}"
    );

    let expansion = ExpansionEngine::new(graph.clone());
    assert_eq!(
        expansion.count(pattern),
        ExpansionOutcome::Finished(expected),
        "expansion disagrees on {name}"
    );

    let engine = GraphPi::new(graph);
    let plan = engine.plan(pattern, PlanOptions::default()).unwrap();
    let modes = [
        ("sequential", CountOptions::sequential_enumeration()),
        (
            "iep",
            CountOptions {
                use_iep: true,
                threads: 1,
                ..CountOptions::default()
            },
        ),
        (
            "parallel",
            CountOptions {
                use_iep: false,
                threads: 4,
                ..CountOptions::default()
            },
        ),
        (
            "parallel-iep",
            CountOptions {
                use_iep: true,
                threads: 4,
                ..CountOptions::default()
            },
        ),
        (
            "hub-sequential",
            CountOptions {
                use_iep: false,
                threads: 1,
                hub_bitsets: true,
                ..CountOptions::default()
            },
        ),
        (
            "hub-parallel-iep",
            CountOptions {
                use_iep: true,
                threads: 4,
                hub_bitsets: true,
                ..CountOptions::default()
            },
        ),
    ];
    for (mode_name, options) in modes {
        assert_eq!(
            engine.execute_count(&plan.plan, options),
            expected,
            "GraphPi {mode_name} disagrees on {name}"
        );
    }
}

#[test]
fn evaluation_patterns_on_power_law_graph() {
    let graph = generators::power_law(60, 4, 1);
    for (name, pattern) in prefab::evaluation_patterns() {
        all_counts_agree(graph.clone(), &pattern, name);
    }
}

#[test]
fn evaluation_patterns_on_uniform_graph() {
    let graph = generators::erdos_renyi(50, 250, 2);
    for (name, pattern) in prefab::evaluation_patterns() {
        all_counts_agree(graph.clone(), &pattern, name);
    }
}

#[test]
fn motifs_on_structured_graphs() {
    // Tier-1 keeps the two structurally extreme graphs; the tier-2 run
    // below covers the full family.
    for (gname, graph) in [
        ("complete-12", generators::complete(12)),
        ("grid-6x6", generators::grid(6, 6)),
    ] {
        for (name, pattern) in prefab::motifs_3() {
            all_counts_agree(graph.clone(), &pattern, &format!("{name} on {gname}"));
        }
    }
}

#[test]
#[ignore = "tier-2: full motif x structured-graph sweep"]
fn motifs_on_structured_graphs_heavy() {
    for (gname, graph) in [
        ("complete-12", generators::complete(12)),
        ("grid-6x6", generators::grid(6, 6)),
        ("cycle-30", generators::cycle(30)),
        ("star-30", generators::star(30)),
    ] {
        for (name, pattern) in prefab::motifs_3().into_iter().chain(prefab::motifs_4()) {
            all_counts_agree(graph.clone(), &pattern, &format!("{name} on {gname}"));
        }
    }
}

#[test]
fn closed_form_counts_on_complete_graphs() {
    // On K_n the number of embeddings of any pattern with p vertices is
    // C(n, p) * p! / |Aut| because every injective mapping works.
    let n = 10usize;
    let graph = generators::complete(n);
    let engine = GraphPi::new(graph);
    let falling = |n: usize, p: usize| -> u64 { ((n - p + 1)..=n).map(|x| x as u64).product() };
    for (name, pattern) in prefab::evaluation_patterns() {
        let p = pattern.num_vertices();
        let aut = graphpi::pattern::automorphism::automorphism_count(&pattern) as u64;
        let expected = falling(n, p) / aut;
        assert_eq!(engine.count(&pattern).unwrap(), expected, "{name} on K{n}");
    }
}

#[test]
fn counts_on_bipartite_like_graph_with_no_odd_cycles() {
    // A grid has no triangles, so every pattern containing a triangle has
    // zero embeddings while the rectangle count is known (number of unit
    // squares plus larger cycles... here just cross-check with naive).
    let graph = generators::grid(5, 5);
    let engine = GraphPi::new(graph.clone());
    assert_eq!(engine.count(&prefab::triangle()).unwrap(), 0);
    assert_eq!(engine.count(&prefab::house()).unwrap(), 0);
    assert_eq!(
        engine.count(&prefab::rectangle()).unwrap(),
        naive::count_embeddings(&prefab::rectangle(), &graph)
    );
}
