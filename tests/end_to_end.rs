//! End-to-end pipeline tests spanning every crate: IO, planning, codegen,
//! execution, and the dataset registry.

use graphpi::core::codegen::{generate, Language};
use graphpi::core::engine::{CountOptions, GraphPi, PlanOptions};
use graphpi::core::exec::cluster::{run_cluster, ClusterOptions};
use graphpi::graph::{datasets, generators, io, GraphStats};
use graphpi::pattern::prefab;
use graphpi::pattern::restriction::validate;

#[test]
fn edge_list_round_trip_preserves_counts() {
    let graph = generators::power_law(200, 5, 8);
    let dir = std::env::temp_dir().join("graphpi_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.txt");
    io::save_edge_list(&graph, &path).unwrap();
    let reloaded = io::load_edge_list(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let original = GraphPi::new(graph);
    let loaded = GraphPi::new(reloaded);
    for pattern in [prefab::triangle(), prefab::house()] {
        assert_eq!(
            original.count(&pattern).unwrap(),
            loaded.count(&pattern).unwrap()
        );
    }
}

#[test]
fn planner_output_is_internally_consistent() {
    let graph = generators::power_law(300, 6, 21);
    let engine = GraphPi::new(graph);
    for (name, pattern) in prefab::evaluation_patterns() {
        let plan = engine.plan(&pattern, PlanOptions::default()).unwrap();
        // The selected restriction set is complete.
        assert!(
            validate(&pattern, &plan.plan.config.restrictions),
            "{name}: selected restriction set is not complete"
        );
        // The selected schedule is one the 2-phase generator would emit.
        assert!(
            plan.plan.config.schedule.prefixes_connected(&pattern),
            "{name}"
        );
        // Generated code mentions every pattern vertex.
        let code = generate(&plan.plan, Language::Cpp);
        for v in 0..pattern.num_vertices() {
            let var = format!("v_{}", (b'A' + v as u8) as char);
            assert!(code.contains(&var), "{name}: {var} missing from codegen");
        }
        // The predicted cost is positive and finite.
        assert!(plan.predicted_cost.is_finite() && plan.predicted_cost > 0.0);
    }
}

#[test]
fn dataset_registry_supports_matching() {
    // The tiny dataset variants must be directly usable by the engine.
    for dataset in datasets::tiny_datasets() {
        let engine = GraphPi::new(dataset.graph.clone());
        let triangles = engine.count(&prefab::triangle()).unwrap();
        assert_eq!(
            triangles,
            graphpi::graph::triangles::count_triangles(&dataset.graph),
            "{}",
            dataset.name
        );
    }
}

#[test]
fn stats_roundtrip_through_with_stats() {
    let graph = generators::erdos_renyi(150, 700, 5);
    let stats = GraphStats::compute(&graph);
    let engine_a = GraphPi::new(graph.clone());
    let engine_b = GraphPi::with_stats(graph, stats);
    assert_eq!(engine_a.stats(), engine_b.stats());
    assert_eq!(
        engine_a.count(&prefab::rectangle()).unwrap(),
        engine_b.count(&prefab::rectangle()).unwrap()
    );
}

#[test]
fn simulated_cluster_agrees_with_direct_counting() {
    let graph = generators::power_law(150, 5, 31);
    let engine = GraphPi::new(graph.clone());
    let pattern = prefab::p3();
    let plan = engine.plan(&pattern, PlanOptions::default()).unwrap();
    let expected = engine.execute_count(&plan.plan, CountOptions::sequential_enumeration());
    let report = run_cluster(
        &plan.plan,
        &graph,
        ClusterOptions {
            num_nodes: 4,
            threads_per_node: 4,
            prefix_depth: None,
            measurement_threads: 2,
        },
    );
    assert_eq!(report.embeddings, expected);
    assert!(report.total_work_seconds >= 0.0);
    assert!(report.makespan_seconds <= report.total_work_seconds + 1e-9);
}

#[test]
fn iep_and_enumeration_agree_on_every_stand_in_family() {
    // One clustered and one uniform graph, all six evaluation patterns.
    for graph in [
        generators::power_law(100, 4, 70),
        generators::erdos_renyi(100, 420, 71),
    ] {
        let engine = GraphPi::new(graph);
        for (name, pattern) in prefab::evaluation_patterns() {
            let plan = engine.plan(&pattern, PlanOptions::default()).unwrap();
            let enumerated =
                engine.execute_count(&plan.plan, CountOptions::sequential_enumeration());
            let iep = engine.execute_count(
                &plan.plan,
                CountOptions {
                    use_iep: true,
                    threads: 1,
                    ..CountOptions::default()
                },
            );
            assert_eq!(enumerated, iep, "{name}");
        }
    }
}
