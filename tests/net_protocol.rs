//! Protocol fault-injection suite: the frame codec must round-trip
//! arbitrary frames, never panic on arbitrary bytes, and a live server fed
//! malformed input — truncated frames, oversized length prefixes, wrong
//! magic/version, unknown opcodes, mid-frame disconnects — must answer
//! every case with a typed error or a clean connection drop while its
//! worker pool stays fully alive.

use graphpi::core::config::ServeOptions;
use graphpi::core::engine::{GraphPi, PlanCache};
use graphpi::core::exec::pool::WorkerPool;
use graphpi::core::net::protocol::{
    self, op, CountRequest, ErrorCode, Frame, LatencyHistogram, NetError, PromoteOk, QueryMode,
    ReplAck, ReplBatch, ReplPayload, ReplSubscribe, StatsOk, WireError, HISTOGRAM_BUCKETS,
    MAX_FRAME_LEN,
};
use graphpi::core::net::{Client, RetryPolicy};
use graphpi::graph::generators;
use graphpi::pattern::prefab;
use proptest::prelude::*;
use std::io::{Cursor, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Codec properties (no sockets).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → read_frame is the identity for every opcode and payload.
    #[test]
    fn frame_codec_round_trips(
        opcode in 0u8..=255,
        payload in proptest::collection::vec(0u8..=255, 0..2048),
    ) {
        let frame = Frame::new(opcode, payload);
        let decoded = protocol::read_frame(&mut Cursor::new(frame.encode())).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// The reader never panics on arbitrary bytes — every outcome is a
    /// frame or a typed error.
    #[test]
    fn reader_never_panics_on_garbage(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = protocol::read_frame(&mut Cursor::new(bytes));
    }

    /// Truncating a valid frame anywhere yields an error, never a frame
    /// and never a panic.
    #[test]
    fn truncated_frames_error(
        payload in proptest::collection::vec(0u8..=255, 0..64),
        cut_seed in 0usize..10_000,
    ) {
        let bytes = Frame::new(op::COUNT, payload).encode();
        let cut = cut_seed % bytes.len();
        if cut < bytes.len() {
            prop_assert!(protocol::read_frame(&mut Cursor::new(bytes[..cut].to_vec())).is_err());
        }
    }

    /// The error payload codec round-trips every code and message.
    #[test]
    fn wire_error_round_trips(
        code in 0u8..=255,
        text in proptest::collection::vec(32u8..127, 0..120),
    ) {
        let message = String::from_utf8(text).expect("printable ascii");
        let error = WireError::new(ErrorCode::from_code(code), &message);
        prop_assert_eq!(WireError::decode(&error.encode()).unwrap(), error);
    }

    /// `STATS_OK` round-trips every field, with the strategy biased
    /// toward the `u64` extremes that would break careless decode or
    /// aggregation arithmetic (0, 1, `u64::MAX`).
    #[test]
    fn stats_ok_round_trips_edge_values(
        words in proptest::collection::vec(
            (0u8..4, 0u64..=u64::MAX).prop_map(|(edge, raw)| match edge {
                0 => 0,
                1 => 1,
                2 => u64::MAX,
                _ => raw,
            }),
            15 + HISTOGRAM_BUCKETS,
        ),
    ) {
        let mut latency = LatencyHistogram::default();
        for (bucket, &word) in latency.buckets.iter_mut().zip(&words[15..]) {
            *bucket = word;
        }
        let stats = StatsOk {
            live_workers: words[0] as u32,
            max_in_flight: words[1] as u32,
            in_flight: words[2] as u32,
            queued: words[3] as u32,
            cache_len: words[4] as u32,
            cache_capacity: words[5] as u32,
            warm_started: words[6] as u32,
            connections_total: words[7],
            queries_total: words[8],
            deadline_exceeded: words[9],
            protocol_errors: words[10],
            cache_hits: words[11],
            cache_misses: words[12],
            cache_evictions: words[13],
            overload_rejections: words[14],
            replication_lag: words[0],
            repl_role: graphpi::core::net::ReplRole::Replica,
            enumerations_total: words[9],
            pages_sent: words[10],
            latency,
        };
        // The v2 encoding round-trips every field; the v1 encoding drops
        // the replication extension, which decodes back to the defaults.
        prop_assert_eq!(StatsOk::decode(&stats.encode_for(2)).unwrap(), stats.clone());
        let v1 = StatsOk::decode(&stats.encode()).unwrap();
        prop_assert_eq!(v1.replication_lag, 0);
        prop_assert_eq!(v1.repl_role, graphpi::core::net::ReplRole::Primary);
        prop_assert_eq!(v1.queries_total, stats.queries_total);
        // Aggregations over a decoded histogram must saturate, not panic,
        // even with every bucket at u64::MAX.
        let _ = stats.latency.total();
        let _ = stats.latency.percentile_upper_bound_micros(0.99);
    }

    /// Every bucket boundary is exact: a sample at a bucket's floor lands
    /// in that bucket, one microsecond below it lands in the previous
    /// one, and the last bucket absorbs everything up to `u64::MAX`.
    #[test]
    fn histogram_bucket_boundaries_are_exact(index in 0usize..HISTOGRAM_BUCKETS) {
        let floor = LatencyHistogram::bucket_floor_micros(index);
        prop_assert_eq!(LatencyHistogram::bucket_index(floor), index);
        if index > 0 && index < HISTOGRAM_BUCKETS - 1 {
            prop_assert_eq!(LatencyHistogram::bucket_index(floor - 1), index - 1);
            let next_floor = LatencyHistogram::bucket_floor_micros(index + 1);
            prop_assert_eq!(LatencyHistogram::bucket_index(next_floor - 1), index);
        }
        prop_assert_eq!(LatencyHistogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    /// Recording into a full bucket saturates instead of wrapping, and a
    /// saturated histogram still aggregates without panicking.
    #[test]
    fn histogram_record_saturates_at_full_buckets(micros in 0u64..=u64::MAX) {
        let mut hist = LatencyHistogram::default();
        let bucket = LatencyHistogram::bucket_index(micros);
        hist.buckets[bucket] = u64::MAX;
        hist.record(micros);
        prop_assert_eq!(hist.buckets[bucket], u64::MAX);
        prop_assert_eq!(hist.total(), u64::MAX);
        prop_assert!(hist.percentile_upper_bound_micros(1.0).is_some());
    }

    /// The replication codecs round-trip every field combination, the
    /// same guarantee the rest of the battery gives the v1 payloads.
    #[test]
    fn replication_codecs_round_trip(
        generation in 0u64..=u64::MAX,
        offset in 0u64..=u64::MAX,
        primary_generation in 0u64..=u64::MAX,
        flavor in 0u8..3,
        bytes in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let sub = ReplSubscribe { generation, offset };
        prop_assert_eq!(ReplSubscribe::decode(&sub.encode()), Some(sub));

        let payload = match flavor {
            0 => ReplPayload::Records,
            1 => ReplPayload::Checkpoint { done: false },
            _ => ReplPayload::Checkpoint { done: true },
        };
        let batch = ReplBatch {
            payload,
            primary_generation,
            generation,
            next_offset: offset,
            bytes,
        };
        prop_assert_eq!(ReplBatch::decode(&batch.encode()), Some(batch.clone()));

        let ack = ReplAck { generation, offset };
        prop_assert_eq!(ReplAck::decode(&ack.encode()), Some(ack));
        let ok = PromoteOk { generation };
        prop_assert_eq!(PromoteOk::decode(&ok.encode()), Some(ok));
    }

    /// Truncating an encoded replication payload anywhere, or appending
    /// trailing garbage, is always a decode refusal — never a panic,
    /// never a silently different value.
    #[test]
    fn replication_codecs_refuse_mangled_payloads(
        generation in 0u64..=u64::MAX,
        offset in 0u64..=u64::MAX,
        bytes in proptest::collection::vec(0u8..=255, 0..64),
        cut_seed in 0usize..10_000,
        garbage in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let batch = ReplBatch {
            payload: ReplPayload::Records,
            primary_generation: generation,
            generation,
            next_offset: offset,
            bytes,
        };
        // Every decoder refuses a strict prefix of its own encoding and
        // its own encoding with trailing garbage appended.
        let sub = ReplSubscribe { generation, offset }.encode();
        prop_assert!(ReplSubscribe::decode(&sub[..cut_seed % sub.len()]).is_none());
        let encoded = batch.encode();
        prop_assert!(ReplBatch::decode(&encoded[..cut_seed % encoded.len()]).is_none());
        let ack = ReplAck { generation, offset }.encode();
        prop_assert!(ReplAck::decode(&ack[..cut_seed % ack.len()]).is_none());
        let ok = PromoteOk { generation }.encode();
        prop_assert!(PromoteOk::decode(&ok[..cut_seed % ok.len()]).is_none());
        for encoded in [sub, encoded, ack, ok] {
            let mut trailing = encoded;
            trailing.extend_from_slice(&[0xEE; 3]);
            prop_assert!(ReplSubscribe::decode(&trailing).is_none());
            prop_assert!(ReplBatch::decode(&trailing).is_none());
            prop_assert!(ReplAck::decode(&trailing).is_none());
            prop_assert!(PromoteOk::decode(&trailing).is_none());
        }
        // Arbitrary bytes never panic any replication decoder.
        let _ = ReplSubscribe::decode(&garbage);
        let _ = ReplBatch::decode(&garbage);
        let _ = ReplAck::decode(&garbage);
        let _ = PromoteOk::decode(&garbage);
    }

    /// Backoff schedules are a pure function of the policy: deterministic
    /// under a fixed seed, one wait per retry, and every jittered wait
    /// stays within [0.5x, 1.5x) of the capped exponential base.
    #[test]
    fn retry_backoff_schedules_are_deterministic_and_bounded(
        seed in 0u64..=u64::MAX,
        attempts in 1u32..12,
        initial_ms in 1u64..50,
        max_ms in 1u64..500,
    ) {
        let policy = RetryPolicy {
            max_attempts: attempts,
            initial_backoff: Duration::from_millis(initial_ms),
            max_backoff: Duration::from_millis(max_ms),
            ..RetryPolicy::default()
        }
        .with_seed(seed);
        let schedule = policy.backoff_schedule();
        prop_assert_eq!(schedule.len(), (attempts - 1) as usize);
        // Same policy, same seed: bit-identical schedule.
        prop_assert_eq!(&policy.backoff_schedule(), &schedule);
        for (retry, wait) in schedule.iter().enumerate() {
            let base = Duration::from_millis(initial_ms)
                .saturating_mul(1 << retry.min(20))
                .min(Duration::from_millis(max_ms));
            prop_assert!(
                *wait >= base / 2,
                "retry {} waited {:?}, below half of base {:?}", retry, wait, base
            );
            prop_assert!(
                *wait <= base * 3 / 2,
                "retry {} waited {:?}, above 1.5x base {:?}", retry, wait, base
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Live-server fault battery.
// ---------------------------------------------------------------------------

/// Starts a server over a small power-law graph, hands the test body the
/// address and the pool (so it can watch `live_workers`), then drains.
fn with_server(body: impl FnOnce(SocketAddr, &Arc<WorkerPool>)) {
    let engine = GraphPi::new(generators::power_law(120, 5, 42));
    let pool = Arc::new(WorkerPool::with_max_in_flight(2, 2));
    let cache = Arc::new(PlanCache::new(8));
    let server = graphpi::core::net::Server::bind_shared(
        "127.0.0.1:0",
        Arc::clone(&pool),
        cache,
        ServeOptions {
            read_timeout: Duration::from_millis(10),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let handle = server.handle().unwrap();
    let addr = handle.addr();
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve(&engine).unwrap());
        body(addr, &pool);
        handle.shutdown();
        serving.join().unwrap();
    });
}

/// Reads the server's reply to a hand-written byte blast: either one
/// typed error frame (returning its code) or a clean drop (`None`).
fn reply_after(addr: SocketAddr, raw: &[u8]) -> Option<ErrorCode> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw).unwrap();
    // The server may need a read-timeout tick to classify a stall; give
    // the reply loop plenty of slack.
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    match protocol::read_frame(&mut stream) {
        Ok(frame) => {
            assert_eq!(
                frame.opcode,
                op::ERROR,
                "non-error reply to malformed input"
            );
            Some(
                WireError::decode(&frame.payload)
                    .expect("undecodable error payload")
                    .code,
            )
        }
        Err(NetError::Closed) => None,
        Err(other) => panic!("unexpected failure reading the reply: {other}"),
    }
}

/// After an error frame that closes the connection, the stream must
/// actually reach EOF.
fn assert_connection_closed(stream: &mut TcpStream) {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 1];
    assert_eq!(
        stream.read(&mut buf).unwrap_or(0),
        0,
        "connection still open"
    );
}

#[test]
fn fault_battery_leaves_the_server_standing() {
    with_server(|addr, pool| {
        let workers_before = pool.live_workers();
        let expected = {
            // In-process baseline for the validity probes between faults.
            let mut client = Client::connect(addr).unwrap();
            client.count(&prefab::triangle()).unwrap().count
        };

        // Case 1: truncated length prefix, then disconnect.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(&[7u8, 0]).unwrap();
            drop(stream); // mid-prefix disconnect: clean drop, no reply owed
        }

        // Case 2: length prefix below the minimum header size.
        let code = reply_after(addr, &2u32.to_le_bytes());
        assert_eq!(code, Some(ErrorCode::BadFrame));

        // Case 3: oversized length prefix — refused before allocation.
        let code = reply_after(addr, &((MAX_FRAME_LEN as u32 + 1).to_le_bytes()));
        assert_eq!(code, Some(ErrorCode::FrameTooLarge));

        // Case 4: wrong magic.
        let mut bad_magic = Frame::new(op::PING, vec![]).encode();
        bad_magic[4] = b'X';
        assert_eq!(reply_after(addr, &bad_magic), Some(ErrorCode::BadFrame));

        // Case 5: wrong version.
        let mut bad_version = Frame::new(op::PING, vec![]).encode();
        bad_version[6] = 99;
        assert_eq!(
            reply_after(addr, &bad_version),
            Some(ErrorCode::UnsupportedVersion)
        );

        // Case 6: mid-frame disconnect — a length prefix promising 100
        // bytes, 10 delivered, then the socket vanishes.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(&100u32.to_le_bytes()).unwrap();
            stream.write_all(&[0xAB; 10]).unwrap();
            drop(stream);
        }

        // Case 7: mid-frame stall — same partial frame, but the client
        // keeps the socket open and goes silent. The read timeout must
        // classify it as truncation and cut it off, not hang a handler.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(&100u32.to_le_bytes()).unwrap();
            stream.write_all(&[0xCD; 10]).unwrap();
            let reply = {
                stream
                    .set_read_timeout(Some(Duration::from_secs(5)))
                    .unwrap();
                protocol::read_frame(&mut stream)
            };
            match reply {
                Ok(frame) => assert_eq!(frame.opcode, op::ERROR),
                Err(NetError::Closed) => {}
                Err(other) => panic!("stalled frame got {other}"),
            }
            assert_connection_closed(&mut stream);
        }

        // Case 8: unknown opcode in a well-formed frame — typed error and
        // the connection SURVIVES for the next request.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(&Frame::new(0x55, vec![1, 2, 3]).encode())
                .unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let frame = protocol::read_frame(&mut stream).unwrap();
            assert_eq!(frame.opcode, op::ERROR);
            assert_eq!(
                WireError::decode(&frame.payload).unwrap().code,
                ErrorCode::UnknownOpcode
            );
            // Same connection still serves a valid ping.
            stream
                .write_all(&Frame::new(op::PING, vec![9]).encode())
                .unwrap();
            let pong = protocol::read_frame(&mut stream).unwrap();
            assert_eq!(pong.opcode, op::PONG);
            assert_eq!(pong.payload, vec![9]);
        }

        // Case 9: COUNT with an undecodable payload — typed error, then a
        // valid count on the same connection returns the right answer.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(&Frame::new(op::COUNT, vec![0, 1]).encode())
                .unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let frame = protocol::read_frame(&mut stream).unwrap();
            assert_eq!(
                WireError::decode(&frame.payload).unwrap().code,
                ErrorCode::BadPayload
            );
            let valid = CountRequest {
                no_iep: false,
                hub_bitsets: false,
                deadline_ms: 0,
                request_id: 0,
                min_generation: 0,
                mode: QueryMode::Count,
                pattern: prefab::triangle().canonical_bytes(),
            };
            stream
                .write_all(&Frame::new(op::COUNT, valid.encode()).encode())
                .unwrap();
            let reply = protocol::read_frame(&mut stream).unwrap();
            assert_eq!(reply.opcode, op::COUNT_OK);
        }

        // Case 10: pattern bytes that are not a canonical pattern (a
        // self-loop) — BadPayload, connection stays.
        {
            let request = CountRequest {
                no_iep: false,
                hub_bitsets: false,
                deadline_ms: 0,
                request_id: 0,
                min_generation: 0,
                mode: QueryMode::Count,
                pattern: vec![2, 0b01], // vertex 0 adjacent to itself
            };
            let mut client = Client::connect(addr).unwrap();
            client.count(&prefab::triangle()).unwrap(); // warm the connection first
                                                        // Hand-roll the bad request through the same socket.
            let mut t = client.into_transport();
            use graphpi::core::net::Transport;
            t.send(&Frame::new(op::COUNT, request.encode())).unwrap();
            let error = match t.recv() {
                Ok(frame) if frame.opcode == op::ERROR => {
                    WireError::decode(&frame.payload).unwrap().into_net_error()
                }
                Ok(_) => panic!("bad pattern bytes were accepted"),
                Err(e) => e,
            };
            assert!(matches!(
                error,
                NetError::Remote {
                    code: ErrorCode::BadPayload,
                    ..
                }
            ));
        }

        // Case 11: a decodable but engine-rejected pattern (empty) —
        // PatternRejected, connection stays open.
        {
            let mut client = Client::connect(addr).unwrap();
            let error = client
                .count(&graphpi::pattern::Pattern::empty(0))
                .unwrap_err();
            assert!(matches!(
                error,
                NetError::Remote {
                    code: ErrorCode::PatternRejected,
                    ..
                }
            ));
            client.ping().unwrap();
        }

        // Give stall-classification handlers time to finish their drops.
        std::thread::sleep(Duration::from_millis(50));

        // The battery killed no workers and the server still answers
        // correctly, with the faults showing up in its own accounting.
        assert_eq!(pool.live_workers(), workers_before, "a worker died");
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.count(&prefab::triangle()).unwrap().count, expected);
        let stats = client.stats().unwrap();
        assert!(
            stats.protocol_errors >= 6,
            "expected the faults to be counted, saw {}",
            stats.protocol_errors
        );
        assert_eq!(stats.live_workers as usize, workers_before);
    });
}

#[test]
fn frames_pipelined_back_to_back_all_get_replies() {
    // Several valid requests written in one burst must each get exactly
    // one reply, in order — the framing keeps sync without per-request
    // round trips.
    with_server(|addr, _pool| {
        let mut stream = TcpStream::connect(addr).unwrap();
        let count = CountRequest {
            no_iep: false,
            hub_bitsets: false,
            deadline_ms: 0,
            request_id: 0,
            min_generation: 0,
            mode: QueryMode::Count,
            pattern: prefab::triangle().canonical_bytes(),
        };
        let mut burst = Vec::new();
        burst.extend_from_slice(&Frame::new(op::PING, vec![1]).encode());
        burst.extend_from_slice(&Frame::new(op::COUNT, count.encode()).encode());
        burst.extend_from_slice(&Frame::new(op::STATS, vec![]).encode());
        stream.write_all(&burst).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(protocol::read_frame(&mut stream).unwrap().opcode, op::PONG);
        assert_eq!(
            protocol::read_frame(&mut stream).unwrap().opcode,
            op::COUNT_OK
        );
        assert_eq!(
            protocol::read_frame(&mut stream).unwrap().opcode,
            op::STATS_OK
        );
    });
}
