//! Serving-path acceptance suite: the persistent worker pool and the
//! plan-cached [`Session`] API must be **bit-identical** to the established
//! execution paths under every combination of thread count, batch size,
//! hub acceleration and counting mode.

use graphpi::core::config::{Configuration, PoolOptions};
use graphpi::core::engine::{CountOptions, GraphPi, PlanCache, PlanOptions};
use graphpi::core::exec::interp;
use graphpi::core::exec::parallel::{count_parallel, CountMode, ParallelOptions};
use graphpi::core::exec::pool::WorkerPool;
use graphpi::core::schedule::efficient_schedules;
use graphpi::graph::generators;
use graphpi::graph::hub::{HubGraph, HubOptions};
use graphpi::pattern::prefab;
use graphpi::pattern::restriction::{generate_restriction_sets, GenerationOptions};
use std::sync::Arc;

fn plan_for(pattern: graphpi::pattern::Pattern) -> graphpi::core::config::ExecutionPlan {
    let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
    let schedules = efficient_schedules(&pattern);
    Configuration::new(pattern, schedules[0].clone(), sets[0].clone()).compile()
}

/// The tentpole agreement sweep: pooled execution must match the scoped
/// spawn-per-call path (and the sequential interpreter) exactly, across
/// thread counts × batch sizes × hub on/off × counting modes.
#[test]
fn pooled_execution_is_bit_identical_to_scoped() {
    let graph = generators::power_law(180, 5, 123);
    let hubs = HubGraph::build(&graph, HubOptions::default());
    for (name, pattern) in prefab::evaluation_patterns().into_iter().take(3) {
        let plan = plan_for(pattern);
        let sequential = interp::count_embeddings(&plan, &graph);
        for &threads in &[1usize, 2, 4] {
            let pool = WorkerPool::new(threads);
            for &batch_size in &[1usize, 64] {
                for mode in [CountMode::Enumerate, CountMode::Iep] {
                    for hubbed in [false, true] {
                        let options = ParallelOptions {
                            threads,
                            mode,
                            batch_size,
                            ..Default::default()
                        };
                        let scoped = if hubbed {
                            graphpi::core::exec::parallel::count_parallel_with_hubs(
                                &plan, &hubs, options,
                            )
                        } else {
                            count_parallel(&plan, &graph, options)
                        };
                        let pooled = if hubbed {
                            pool.count_with_hubs(&plan, &hubs, &options)
                        } else {
                            pool.count(&plan, &graph, &options)
                        };
                        assert_eq!(
                            pooled, scoped,
                            "{name}: pooled vs scoped (threads={threads}, \
                             batch={batch_size}, mode={mode:?}, hubs={hubbed})"
                        );
                        assert_eq!(
                            pooled, sequential,
                            "{name}: pooled vs sequential (threads={threads}, \
                             batch={batch_size}, mode={mode:?}, hubs={hubbed})"
                        );
                    }
                }
            }
        }
    }
}

/// One pool re-used for many different plans/options must never leak state
/// between jobs (tasks, counts or scratch).
#[test]
fn pool_state_is_isolated_between_jobs() {
    let graph = generators::power_law(160, 5, 77);
    let pool = WorkerPool::new(3);
    let plans: Vec<_> = prefab::evaluation_patterns()
        .into_iter()
        .take(4)
        .map(|(name, p)| (name, plan_for(p)))
        .collect();
    let expected: Vec<u64> = plans
        .iter()
        .map(|(_, plan)| interp::count_embeddings(plan, &graph))
        .collect();
    for round in 0..3 {
        for ((name, plan), &want) in plans.iter().zip(&expected) {
            assert_eq!(
                pool.count(plan, &graph, &ParallelOptions::default()),
                want,
                "{name} (round {round})"
            );
        }
    }
}

#[test]
fn session_agrees_with_engine_for_every_mode() {
    let graph = generators::power_law(200, 5, 55);
    let engine = GraphPi::new(graph);
    let session = engine.session_with(
        PoolOptions {
            threads: 2,
            cache_capacity: 16,
            ..PoolOptions::default()
        },
        PlanOptions::default(),
        CountOptions::default(),
    );
    for (name, pattern) in prefab::evaluation_patterns().into_iter().take(3) {
        let expected = engine.count(&pattern).unwrap();
        assert_eq!(session.count(&pattern).unwrap(), expected, "{name}");
        for (use_iep, hub_bitsets) in [(false, false), (true, true)] {
            let got = session
                .count_with(
                    &pattern,
                    CountOptions {
                        use_iep,
                        hub_bitsets,
                        ..CountOptions::default()
                    },
                )
                .unwrap();
            assert_eq!(got, expected, "{name} (iep={use_iep}, hubs={hub_bitsets})");
        }
    }
}

/// Warm repeats hit the plan cache and stay bit-identical.
#[test]
fn warm_repeats_hit_the_cache_and_agree() {
    let engine = GraphPi::new(generators::power_law(170, 5, 31));
    let session = engine.session();
    let pattern = prefab::house();
    let cold = session.count(&pattern).unwrap();
    for _ in 0..10 {
        assert_eq!(session.count(&pattern).unwrap(), cold);
    }
    let stats = session.cache_stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 10);
}

/// The concurrency matrix of the multi-tenant pool: several submitter
/// threads keep distinct jobs (different plans × modes × batch sizes) in
/// flight simultaneously, and every single result must equal the
/// sequential interpreter's. This is the bit-identity guarantee of the
/// tentpole sweep above, extended to *overlapping* jobs.
#[test]
fn concurrent_jobs_on_one_pool_are_bit_identical() {
    let graph = generators::power_law(170, 5, 201);
    let plans: Vec<_> = prefab::evaluation_patterns()
        .into_iter()
        .take(4)
        .map(|(name, p)| (name, plan_for(p)))
        .collect();
    let expected: Vec<u64> = plans
        .iter()
        .map(|(_, plan)| interp::count_embeddings(plan, &graph))
        .collect();
    for &(threads, max_in_flight) in &[(1usize, 2usize), (2, 2), (2, 4), (4, 3)] {
        let pool = WorkerPool::with_max_in_flight(threads, max_in_flight);
        std::thread::scope(|scope| {
            for (i, ((name, plan), &want)) in plans.iter().zip(&expected).enumerate() {
                let pool = &pool;
                let graph = &graph;
                scope.spawn(move || {
                    let options = ParallelOptions {
                        mode: if i % 2 == 0 {
                            CountMode::Enumerate
                        } else {
                            CountMode::Iep
                        },
                        batch_size: [1, 8, 64][i % 3],
                        ..Default::default()
                    };
                    for round in 0..4 {
                        assert_eq!(
                            pool.count(plan, graph, &options),
                            want,
                            "{name} (round {round}, threads={threads}, \
                             max_in_flight={max_in_flight})"
                        );
                    }
                });
            }
        });
        assert_eq!(pool.in_flight(), 0);
    }
}

/// The serving stress test: N client threads × M mixed patterns hammer one
/// shared `Session` concurrently. Every count must match the sequential
/// engine, and the cache counters must stay consistent (each query is
/// exactly one hit or one miss: hits + misses == queries).
#[test]
fn concurrent_clients_stress_shared_session() {
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 6;
    let engine = GraphPi::new(generators::power_law(170, 5, 333));
    let session = engine.session_with(
        PoolOptions {
            threads: 2,
            cache_capacity: 8,
            max_in_flight: CLIENTS,
        },
        PlanOptions::default(),
        CountOptions::default(),
    );
    let patterns: Vec<_> = prefab::evaluation_patterns()
        .into_iter()
        .take(4)
        .map(|(_, p)| p)
        .collect();
    let expected: Vec<u64> = patterns.iter().map(|p| engine.count(p).unwrap()).collect();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let session = &session;
            let patterns = &patterns;
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Stagger the pattern mix per client so distinct plans
                    // overlap in flight.
                    let idx = (client + round) % patterns.len();
                    assert_eq!(
                        session.count(&patterns[idx]).unwrap(),
                        expected[idx],
                        "client {client}, round {round}"
                    );
                }
            });
        }
    });
    let stats = session.cache_stats();
    assert_eq!(
        stats.hits + stats.misses,
        (CLIENTS * ROUNDS) as u64,
        "every query is exactly one hit or one miss"
    );
    // The cache plans outside its lock, so with CLIENTS threads up to
    // CLIENTS racing planners per cold key are legitimate.
    assert!(stats.misses >= patterns.len() as u64);
    assert!(stats.misses <= (patterns.len() * CLIENTS) as u64);
    assert_eq!(session.pool().in_flight(), 0);
}

/// A poisoned job must not disturb concurrent jobs on the same session
/// pool, and the pool (including its worker threads) must stay fully
/// usable afterwards.
#[test]
fn concurrent_panicking_job_leaves_other_jobs_exact() {
    let graph = generators::power_law(150, 5, 91);
    let pool = WorkerPool::with_max_in_flight(2, 3);
    let good = plan_for(prefab::house());
    let expected = interp::count_embeddings(&good, &graph);
    // Corrupt a plan so task processing indexes out of bounds.
    let mut bad = plan_for(graphpi::pattern::Pattern::new(2, &[(0, 1)]));
    bad.loops[1].parents = vec![3];
    std::thread::scope(|scope| {
        let poisoner = {
            let pool = &pool;
            let bad = &bad;
            let graph = &graph;
            scope.spawn(move || {
                for _ in 0..5 {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        pool.count(
                            bad,
                            graph,
                            &ParallelOptions {
                                batch_size: 1,
                                ..Default::default()
                            },
                        )
                    }));
                    assert!(result.is_err(), "corrupted plan must panic");
                }
            })
        };
        for _ in 0..2 {
            let pool = &pool;
            let good = &good;
            let graph = &graph;
            scope.spawn(move || {
                for _ in 0..8 {
                    assert_eq!(
                        pool.count(good, graph, &ParallelOptions::default()),
                        expected
                    );
                }
            });
        }
        poisoner.join().unwrap();
    });
    // Workers survive panicking jobs (they used to unwind and die), and a
    // fresh job on the same pool still counts exactly.
    assert_eq!(pool.live_workers(), 2);
    assert_eq!(
        pool.count(&good, &graph, &ParallelOptions::default()),
        expected
    );
    assert_eq!(pool.in_flight(), 0);
}

/// Backpressure: a pool with `max_in_flight = 1` degrades gracefully to
/// one-job-at-a-time under concurrent submitters — exact counts, blocked
/// (not rejected) submissions, nothing in flight afterwards.
#[test]
fn concurrent_submitters_respect_backpressure_limit() {
    let graph = generators::power_law(150, 5, 77);
    let pool = WorkerPool::with_max_in_flight(2, 1);
    assert_eq!(pool.max_in_flight(), 1);
    let plan = plan_for(prefab::house());
    let expected = interp::count_embeddings(&plan, &graph);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let pool = &pool;
            let plan = &plan;
            let graph = &graph;
            scope.spawn(move || {
                for _ in 0..3 {
                    assert_eq!(
                        pool.count(plan, graph, &ParallelOptions::default()),
                        expected
                    );
                }
            });
        }
    });
    assert_eq!(pool.in_flight(), 0);
}

/// A session shared by reference across threads serves concurrent queries
/// correctly (jobs overlap on the multi-tenant pool).
#[test]
fn session_shared_across_threads_agrees() {
    let engine = GraphPi::new(generators::power_law(160, 5, 91));
    let session = engine.session_with(
        PoolOptions {
            threads: 2,
            cache_capacity: 8,
            ..PoolOptions::default()
        },
        PlanOptions::default(),
        CountOptions::default(),
    );
    let patterns = [prefab::triangle(), prefab::rectangle(), prefab::house()];
    let expected: Vec<u64> = patterns.iter().map(|p| engine.count(p).unwrap()).collect();
    std::thread::scope(|scope| {
        for offset in 0..3usize {
            let session = &session;
            let patterns = &patterns;
            let expected = &expected;
            scope.spawn(move || {
                for i in 0..6usize {
                    let idx = (offset + i) % patterns.len();
                    assert_eq!(session.count(&patterns[idx]).unwrap(), expected[idx]);
                }
            });
        }
    });
    // The cache plans outside its lock, so with 3 threads up to 3 racing
    // planners per cold key are legitimate; everything else must be hits.
    let stats = session.cache_stats();
    assert_eq!(stats.hits + stats.misses, 18);
    assert!(stats.misses <= patterns.len() as u64 * 3);
}

/// A cache shared between engines over different graphs must key on the
/// graph fingerprint: same pattern, different graph, different entry.
#[test]
fn shared_cache_is_keyed_by_graph() {
    let engine_a = GraphPi::new(generators::power_law(150, 5, 7));
    let engine_b = GraphPi::new(generators::power_law(150, 5, 8));
    let pool = Arc::new(WorkerPool::new(2));
    let cache = Arc::new(PlanCache::new(8));
    let session_a = engine_a.session_shared(
        Arc::clone(&pool),
        Arc::clone(&cache),
        PlanOptions::default(),
        CountOptions::default(),
    );
    let session_b = engine_b.session_shared(
        Arc::clone(&pool),
        Arc::clone(&cache),
        PlanOptions::default(),
        CountOptions::default(),
    );
    let pattern = prefab::house();
    let count_a = session_a.count(&pattern).unwrap();
    let count_b = session_b.count(&pattern).unwrap();
    assert_eq!(count_a, engine_a.count(&pattern).unwrap());
    assert_eq!(count_b, engine_b.count(&pattern).unwrap());
    let stats = cache.stats();
    assert_eq!(stats.misses, 2, "one planning run per graph");
    assert_eq!(stats.len, 2, "one entry per graph");
}

/// LRU capacity pressure: old entries are evicted, recently used survive,
/// and counts never change either way.
#[test]
fn lru_eviction_preserves_correctness() {
    let engine = GraphPi::new(generators::power_law(150, 5, 19));
    let session = engine.session_with(
        PoolOptions {
            threads: 1,
            cache_capacity: 2,
            ..PoolOptions::default()
        },
        PlanOptions::default(),
        CountOptions::default(),
    );
    let patterns: Vec<_> = prefab::evaluation_patterns()
        .into_iter()
        .take(4)
        .map(|(_, p)| p)
        .collect();
    let expected: Vec<u64> = patterns.iter().map(|p| engine.count(p).unwrap()).collect();
    // Two rotations through four patterns with capacity two: constant
    // churn, counts stay exact.
    for _ in 0..2 {
        for (p, &want) in patterns.iter().zip(&expected) {
            assert_eq!(session.count(p).unwrap(), want);
        }
    }
    let stats = session.cache_stats();
    assert!(stats.evictions >= 4, "evictions: {}", stats.evictions);
    assert_eq!(stats.len, 2);
}
